package proto

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// echoHandler returns its arguments with a marker byte appended.
func echoHandler(src transport.Addr, iface uint32, proc uint16, args []byte) ([]byte, error) {
	out := append([]byte(nil), args...)
	return append(out, 0xEE), nil
}

func pair(t *testing.T, ex *transport.Exchange, cfg Config, h Handler) (caller, server *Conn, serverAddr transport.Addr) {
	t.Helper()
	cp := ex.Port("caller")
	sp := ex.Port("server")
	caller = NewConn(cp, cfg, nil)
	server = NewConn(sp, cfg, h)
	t.Cleanup(func() {
		caller.Close()
		server.Close()
	})
	return caller, server, transport.AddrOf("server")
}

func fastCfg() Config {
	return Config{RetransInterval: 20 * time.Millisecond, MaxRetries: 8, Workers: 4}
}

// faultyPair is pair with the caller's port wrapped in a faultnet profile,
// so both its outgoing calls and incoming results cross the impaired link.
func faultyPair(t *testing.T, ex *transport.Exchange, cfg Config, h Handler, prof faultnet.Profile, seed uint64) (caller, server *Conn, serverAddr transport.Addr, ft *faultnet.Transport) {
	t.Helper()
	ft = faultnet.Wrap(ex.Port("caller"), prof, seed)
	caller = NewConn(ft, cfg, nil)
	server = NewConn(ex.Port("server"), cfg, h)
	t.Cleanup(func() {
		caller.Close() // closes ft, which closes the underlying port
		server.Close()
	})
	return caller, server, transport.AddrOf("server"), ft
}

func TestFastPathSingleRoundTrip(t *testing.T) {
	ex := transport.NewExchange()
	caller, server, sa := pair(t, ex, fastCfg(), echoHandler)
	act := caller.NewActivity()
	res, err := caller.Call(sa, act, 1, 7, 3, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "hello\xee" {
		t.Fatalf("result %q", res)
	}
	cs, ss := caller.Stats(), server.Stats()
	if cs.Retransmits != 0 || ss.DupCalls != 0 {
		t.Errorf("fast path had retransmits/dups: %+v %+v", cs, ss)
	}
	if cs.AcksSent != 0 && ss.AcksSent != 0 {
		t.Errorf("fast path sent explicit acks: %+v %+v", cs, ss)
	}
	if cs.CallsCompleted != 1 || ss.CallsServed != 1 {
		t.Errorf("counters: %+v %+v", cs, ss)
	}
}

func TestEmptyArgsAndResult(t *testing.T) {
	ex := transport.NewExchange()
	caller, _, sa := pair(t, ex, fastCfg(),
		func(transport.Addr, uint32, uint16, []byte) ([]byte, error) { return nil, nil })
	res, err := caller.Call(sa, caller.NewActivity(), 1, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("result %v, want empty", res)
	}
}

func TestLargeArgumentFragmentation(t *testing.T) {
	ex := transport.NewExchange()
	caller, server, sa := pair(t, ex, fastCfg(), echoHandler)
	args := make([]byte, 5000) // 4 fragments at 1440
	for i := range args {
		args[i] = byte(i * 13)
	}
	res, err := caller.Call(sa, caller.NewActivity(), 1, 1, 1, args)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res[:len(args)], args) || res[len(args)] != 0xEE {
		t.Fatal("fragmented args mangled")
	}
	if server.Stats().AcksSent == 0 {
		t.Error("multi-fragment call should produce explicit acks")
	}
}

func TestLargeResultFragmentation(t *testing.T) {
	ex := transport.NewExchange()
	big := make([]byte, 10000)
	for i := range big {
		big[i] = byte(i)
	}
	caller, _, sa := pair(t, ex, fastCfg(),
		func(transport.Addr, uint32, uint16, []byte) ([]byte, error) { return big, nil })
	res, err := caller.Call(sa, caller.NewActivity(), 1, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, big) {
		t.Fatal("fragmented result mangled")
	}
	if caller.Stats().AcksSent == 0 {
		t.Error("multi-fragment result should be acked by the caller")
	}
}

func TestOversizeRejected(t *testing.T) {
	ex := transport.NewExchange()
	caller, _, sa := pair(t, ex, fastCfg(), echoHandler)
	_, err := caller.Call(sa, caller.NewActivity(), 1, 1, 1,
		make([]byte, maxFragments*wire.MaxSinglePacketPayload+1))
	if err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestLossRecovery(t *testing.T) {
	ex := transport.NewExchange()
	caller, server, sa, _ := faultyPair(t, ex, fastCfg(), echoHandler,
		faultnet.Loss(0.2), 1)
	act := caller.NewActivity()
	for seq := uint32(1); seq <= 20; seq++ {
		msg := []byte(fmt.Sprintf("call-%d", seq))
		res, err := caller.Call(sa, act, seq, 1, 1, msg)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if !bytes.Equal(res[:len(msg)], msg) {
			t.Fatalf("seq %d corrupted", seq)
		}
	}
	if caller.Stats().Retransmits == 0 {
		t.Error("no retransmissions despite loss")
	}
	// Every call must have executed exactly once despite retransmission.
	if got := server.Stats().CallsServed; got != 20 {
		t.Errorf("server executed %d calls, want exactly 20", got)
	}
}

func TestLossyFragmentedCalls(t *testing.T) {
	ex := transport.NewExchange()
	prof := faultnet.Profile{
		Out: faultnet.Impair{Drop: 0.15, Dup: 0.1},
		In:  faultnet.Impair{Drop: 0.15, Dup: 0.1},
	}
	cfg := fastCfg()
	cfg.MaxRetries = 12
	caller, server, sa, _ := faultyPair(t, ex, cfg, echoHandler, prof, 2)
	act := caller.NewActivity()
	args := make([]byte, 4000)
	for i := range args {
		args[i] = byte(i * 31)
	}
	for seq := uint32(1); seq <= 8; seq++ {
		res, err := caller.Call(sa, act, seq, 1, 1, args)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if !bytes.Equal(res[:len(args)], args) {
			t.Fatalf("seq %d corrupted", seq)
		}
	}
	if got := server.Stats().CallsServed; got != 8 {
		t.Errorf("server executed %d calls, want exactly 8 (duplicate suppression)", got)
	}
}

func TestDuplicateCallAnsweredFromRetainedResult(t *testing.T) {
	ex := transport.NewExchange()
	var executions atomic.Int64
	caller, server, sa := pair(t, ex, fastCfg(),
		func(_ transport.Addr, _ uint32, _ uint16, args []byte) ([]byte, error) {
			executions.Add(1)
			return []byte("answer"), nil
		})
	act := caller.NewActivity()
	if _, err := caller.Call(sa, act, 1, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	// Manually retransmit the same call (simulating a lost result): the
	// server must resend the retained result without re-executing.
	h := wire.RPCHeader{
		Type: wire.TypeCall, Activity: act, Seq: 1, FragCount: 1,
		Flags: wire.FlagLastFrag | wire.FlagPleaseAck,
	}
	cp := ex.Port("probe")
	defer cp.Close()
	// Send from the caller's own port so the server sees the same source.
	// Use the caller conn's transport via another Call? Instead: direct.
	if err := sendRaw(ex, "caller", "server", buildFrame(h, nil)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if executions.Load() != 1 {
		t.Fatalf("duplicate call re-executed: %d", executions.Load())
	}
	if server.Stats().ResultRetrans == 0 {
		t.Fatal("retained result not retransmitted")
	}
}

// sendRaw injects a frame into the exchange as if from srcName.
func sendRaw(ex *transport.Exchange, srcName, dstName string, frame []byte) error {
	// The exchange delivers by port name; we need a port with the same
	// name as src. Reuse reflection-free trick: deliver directly through a
	// fresh exchange API — simplest is to make the test's frame appear to
	// come from the caller by sending from its own port, which we cannot
	// reach here. Instead, Exchange routes purely by dst, and the server
	// keys activities by src string, so we must spoof src. We do that by
	// attaching a raw port whose name matches srcName on a second exchange
	// — not possible. So: send from a port literally named srcName is the
	// only way; since "caller" exists, we go through it via SendFrom.
	return ex.SendFrom(srcName, dstName, frame)
}

func TestInProgressAckResetsPatience(t *testing.T) {
	ex := transport.NewExchange()
	release := make(chan struct{})
	cfg := Config{RetransInterval: 15 * time.Millisecond, MaxRetries: 3, Workers: 2}
	caller, server, sa := pair(t, ex, cfg,
		func(transport.Addr, uint32, uint16, []byte) ([]byte, error) {
			<-release
			return []byte("slow"), nil
		})
	// The call takes ~20 retransmission intervals; MaxRetries is only 3,
	// so it succeeds only because in-progress acks keep resetting patience.
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(release)
	}()
	res, err := caller.Call(sa, caller.NewActivity(), 1, 1, 1, nil)
	if err != nil {
		t.Fatalf("slow call failed: %v", err)
	}
	if string(res) != "slow" {
		t.Fatalf("result %q", res)
	}
	if server.Stats().InProgressAcks == 0 {
		t.Fatal("no in-progress acks were sent")
	}
}

func TestRejectUnknown(t *testing.T) {
	ex := transport.NewExchange()
	caller, _, sa := pair(t, ex, fastCfg(),
		func(transport.Addr, uint32, uint16, []byte) ([]byte, error) {
			return nil, errors.New("no such procedure")
		})
	_, err := caller.Call(sa, caller.NewActivity(), 1, 9, 9, nil)
	if err != ErrRejected {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestCallToNobodyTimesOut(t *testing.T) {
	ex := transport.NewExchange()
	cp := ex.Port("lonely")
	caller := NewConn(cp, Config{RetransInterval: 5 * time.Millisecond, MaxRetries: 3, Workers: 1}, nil)
	defer caller.Close()
	start := time.Now()
	_, err := caller.Call(transport.AddrOf("ghost"), caller.NewActivity(), 1, 1, 1, nil)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestCallerWithoutHandlerRejectsIncoming(t *testing.T) {
	ex := transport.NewExchange()
	a := NewConn(ex.Port("a"), fastCfg(), nil)
	b := NewConn(ex.Port("b"), fastCfg(), nil)
	defer a.Close()
	defer b.Close()
	_, err := a.Call(transport.AddrOf("b"), a.NewActivity(), 1, 1, 1, nil)
	if err != ErrRejected {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestConcurrentCallers(t *testing.T) {
	ex := transport.NewExchange()
	caller, server, sa := pair(t, ex, fastCfg(), echoHandler)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			act := caller.NewActivity()
			for seq := uint32(1); seq <= 25; seq++ {
				msg := []byte(fmt.Sprintf("a%d-s%d", act, seq))
				res, err := caller.Call(sa, act, seq, 1, 1, msg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(res[:len(msg)], msg) {
					errs <- fmt.Errorf("corrupted response")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := server.Stats().CallsServed; got != 200 {
		t.Fatalf("served %d, want 200", got)
	}
}

func TestPing(t *testing.T) {
	ex := transport.NewExchange()
	caller, _, sa := pair(t, ex, fastCfg(), echoHandler)
	if err := caller.Ping(sa, time.Second); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := caller.Ping(transport.AddrOf("ghost"), 50*time.Millisecond); err != ErrTimeout {
		t.Fatalf("ghost ping err = %v, want ErrTimeout", err)
	}
}

func TestCloseFailsOutstanding(t *testing.T) {
	ex := transport.NewExchange()
	release := make(chan struct{})
	caller, _, sa := pair(t, ex, fastCfg(),
		func(transport.Addr, uint32, uint16, []byte) ([]byte, error) {
			<-release
			return nil, nil
		})
	defer close(release)
	done := make(chan error, 1)
	go func() {
		_, err := caller.Call(sa, caller.NewActivity(), 1, 1, 1, nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	caller.Close()
	select {
	case err := <-done:
		if err != ErrClosed && err != ErrTimeout {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("outstanding call not failed by Close")
	}
}

func TestActivitiesIndependent(t *testing.T) {
	ex := transport.NewExchange()
	caller, server, sa := pair(t, ex, fastCfg(), echoHandler)
	a1, a2 := caller.NewActivity(), caller.NewActivity()
	if a1 == a2 {
		t.Fatal("activities collide")
	}
	// Same seq on different activities must both execute.
	if _, err := caller.Call(sa, a1, 1, 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(sa, a2, 1, 1, 1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if server.Stats().CallsServed != 2 {
		t.Fatal("activity isolation broken")
	}
}

func TestFragmentHelper(t *testing.T) {
	if got := fragment(nil, 10); len(got) != 1 || got[0] != nil {
		t.Fatal("empty message must yield one empty fragment")
	}
	msg := make([]byte, 25)
	got := fragment(msg, 10)
	if len(got) != 3 || len(got[0]) != 10 || len(got[2]) != 5 {
		t.Fatalf("fragment sizes wrong: %d pieces", len(got))
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	s, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback UDP:", err)
	}
	c, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewConn(s, fastCfg(), echoHandler)
	caller := NewConn(c, fastCfg(), nil)
	defer server.Close()
	defer caller.Close()

	res, err := caller.Call(s.LocalAddr(), caller.NewActivity(), 1, 1, 1, []byte("over-udp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "over-udp\xee" {
		t.Fatalf("result %q", res)
	}

	// Fragmented over real UDP too.
	big := make([]byte, 6000)
	res, err = caller.Call(s.LocalAddr(), caller.NewActivity(), 1, 1, 1, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6001 {
		t.Fatalf("result len %d", len(res))
	}
}
