package proto

import (
	"context"
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// sniffTransport wraps a transport for tests: it records the header of
// every sent TypeCall frame and can drop frames matched by drop.
type sniffTransport struct {
	transport.Transport
	mu    sync.Mutex
	calls []wire.RPCHeader
	drop  func(hdr wire.RPCHeader) bool
}

func (s *sniffTransport) Send(dst transport.Addr, frame []byte) error {
	hdr, _, err := wire.UnmarshalRPC(frame)
	if err == nil {
		s.mu.Lock()
		dropIt := s.drop != nil && s.drop(hdr)
		if !dropIt && hdr.Type == wire.TypeCall {
			s.calls = append(s.calls, hdr)
		}
		s.mu.Unlock()
		if dropIt {
			return nil
		}
	}
	return s.Transport.Send(dst, frame)
}

func (s *sniffTransport) lastCall(t *testing.T) wire.RPCHeader {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.calls) == 0 {
		t.Fatal("no call frames recorded")
	}
	return s.calls[len(s.calls)-1]
}

// sessionState polls the caller's channel for addr until its session state
// matches want (or the deadline passes).
func waitSessionState(t *testing.T, c *Conn, addr transport.Addr, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ch := c.lookupChannel(addr); ch != nil && sessStateOf(ch.sess.Load()) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	state := -1
	if ch := c.lookupChannel(addr); ch != nil {
		state = sessStateOf(ch.sess.Load())
	}
	t.Fatalf("session state = %s, want %s", sessStateName(state), sessStateName(want))
}

// TestSessionNegotiates pins the default behavior: the first call triggers
// a hello, both sides converge on SessionVersion with the full feature
// intersection, and the agreement is cached (no re-negotiation on later
// calls).
func TestSessionNegotiates(t *testing.T) {
	ex := transport.NewExchange()
	caller, server, sa := pair(t, ex, fastCfg(), echoHandler)
	act := caller.NewActivity()
	if _, err := caller.Call(sa, act, 1, 7, 3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitSessionState(t, caller, sa, sessNegotiated)
	ch := caller.lookupChannel(sa)
	w := ch.sess.Load()
	if v := sessVersionOf(w); v != wire.SessionVersion {
		t.Fatalf("agreed version = %d, want %d", v, wire.SessionVersion)
	}
	if f := sessFeaturesOf(w); f != defaultFeatures {
		t.Fatalf("negotiated features = %#x, want %#x", f, defaultFeatures)
	}
	// The responder caches the same agreement on its side of the channel.
	waitSessionState(t, server, caller.LocalAddr(), sessNegotiated)
	for i := 0; i < 10; i++ {
		if _, err := caller.Call(sa, act, uint32(2+i), 7, 3, nil); err != nil {
			t.Fatal(err)
		}
	}
	cs, ss := caller.Stats(), server.Stats()
	if cs.SessionsNegotiated != 1 {
		t.Fatalf("caller SessionsNegotiated = %d, want 1", cs.SessionsNegotiated)
	}
	if ss.SessionsNegotiated != 1 {
		t.Fatalf("server SessionsNegotiated = %d, want 1", ss.SessionsNegotiated)
	}
	if cs.HellosSent < 1 || cs.HellosSent > defaultHelloAttempts {
		t.Fatalf("caller HellosSent = %d", cs.HellosSent)
	}
}

// TestSessionLegacyFallback pins old-binary interop: a peer that drops
// hello packets as bad frames (DisableHello simulates the pre-session
// binary) still serves calls, and the caller settles on the legacy session
// after its hello attempts run out.
func TestSessionLegacyFallback(t *testing.T) {
	ex := transport.NewExchange()
	cfg := fastCfg()
	cfg.HelloTimeout = 5 * time.Millisecond
	oldCfg := cfg
	oldCfg.DisableHello = true
	caller := NewConn(ex.Port("caller"), cfg, nil)
	server := NewConn(ex.Port("server"), oldCfg, echoHandler)
	t.Cleanup(func() { caller.Close(); server.Close() })
	sa := transport.AddrOf("server")

	act := caller.NewActivity()
	// Calls succeed from the first one, while negotiation is still pending.
	for i := 0; i < 5; i++ {
		res, err := caller.Call(sa, act, uint32(1+i), 7, 3, []byte("hi"))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 {
			t.Fatal("empty result")
		}
	}
	waitSessionState(t, caller, sa, sessLegacy)
	cs := caller.Stats()
	if cs.SessionsLegacy != 1 {
		t.Fatalf("SessionsLegacy = %d, want 1", cs.SessionsLegacy)
	}
	if cs.HellosSent != defaultHelloAttempts {
		t.Fatalf("HellosSent = %d, want %d", cs.HellosSent, defaultHelloAttempts)
	}
	if server.Stats().BadFrames < defaultHelloAttempts {
		t.Fatalf("old server BadFrames = %d, want >= %d (dropped hellos)",
			server.Stats().BadFrames, defaultHelloAttempts)
	}
	// Legacy implies the v0 capability set: budget and cancel stay on.
	if f := caller.lookupChannel(sa).features(); f != legacyFeatures {
		t.Fatalf("legacy features = %#x, want %#x", f, legacyFeatures)
	}
	if _, err := caller.Call(sa, act, 100, 7, 3, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSessionVersionMismatch pins the rejection path: a caller from a
// future protocol generation whose minimum version is beyond ours gets a
// version-0 ack and falls back to legacy on both sides; calls keep working.
func TestSessionVersionMismatch(t *testing.T) {
	ex := transport.NewExchange()
	cfg := fastCfg()
	caller, server, sa := pair(t, ex, cfg, echoHandler)
	// Impersonate a future binary that no longer speaks our version.
	caller.helloVersion = wire.SessionVersion + 7
	caller.helloMinVersion = wire.SessionVersion + 5

	act := caller.NewActivity()
	if _, err := caller.Call(sa, act, 1, 7, 3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitSessionState(t, caller, sa, sessLegacy)
	if caller.Stats().HelloRejects != 1 {
		t.Fatalf("caller HelloRejects = %d, want 1", caller.Stats().HelloRejects)
	}
	if server.Stats().HelloRejects != 1 {
		t.Fatalf("server HelloRejects = %d, want 1", server.Stats().HelloRejects)
	}
	waitSessionState(t, server, caller.LocalAddr(), sessLegacy)
	if _, err := caller.Call(sa, act, 2, 7, 3, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSessionFeatureDowngrade pins capability gating on the wire: against
// a peer that does not advertise FeatBudget, calls stop carrying the
// budget flag once negotiation concludes, and without FeatCancel the
// caller stops sending cancel packets (failing the call locally as if the
// cancel were lost).
func TestSessionFeatureDowngrade(t *testing.T) {
	ex := transport.NewExchange()
	cfg := fastCfg()
	cfg.CallTimeout = time.Second // every call has a deadline to advertise
	srvCfg := cfg
	srvCfg.AdvertiseFeatures = wire.FeatBatch // no budget, no cancel
	sniff := &sniffTransport{Transport: ex.Port("caller")}
	caller := NewConn(sniff, cfg, nil)
	block := make(chan struct{})
	server := NewConn(ex.Port("server"), srvCfg, func(src transport.Addr, iface uint32, proc uint16, args []byte) ([]byte, error) {
		if proc == 99 {
			<-block
		}
		return args, nil
	})
	t.Cleanup(func() { close(block); caller.Close(); server.Close() })
	sa := transport.AddrOf("server")

	act := caller.NewActivity()
	if _, err := caller.Call(sa, act, 1, 7, 3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitSessionState(t, caller, sa, sessNegotiated)
	if f := caller.lookupChannel(sa).features(); f != wire.FeatBatch {
		t.Fatalf("negotiated features = %#x, want %#x", f, wire.FeatBatch)
	}
	if _, err := caller.Call(sa, act, 2, 7, 3, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if hdr := sniff.lastCall(t); hdr.Flags&wire.FlagBudget != 0 {
		t.Fatalf("negotiated-down call still carries FlagBudget (flags %#x)", hdr.Flags)
	}
	// Cancel a call stuck in a blocked handler: no cancel packet may leave.
	ctx, cancel := context.WithCancel(context.Background())
	p, err := caller.Go(ctx, sa, act, 3, 7, 99, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	cancel()
	if _, err := p.Await(ctx); err != context.Canceled {
		t.Fatalf("Await err = %v, want context.Canceled", err)
	}
	time.Sleep(10 * time.Millisecond)
	if n := server.Stats().Cancels; n != 0 {
		t.Fatalf("server received %d cancel packets from a no-FeatCancel session", n)
	}
}

// TestSessionHelloLostFallsBack drops every hello on the floor (calls flow
// untouched): the caller must retry the configured number of times and
// then settle on legacy without ever stalling a call.
func TestSessionHelloLostFallsBack(t *testing.T) {
	ex := transport.NewExchange()
	cfg := fastCfg()
	cfg.HelloTimeout = 5 * time.Millisecond
	sniff := &sniffTransport{
		Transport: ex.Port("caller"),
		drop:      func(hdr wire.RPCHeader) bool { return hdr.Type == wire.TypeHello },
	}
	caller := NewConn(sniff, cfg, nil)
	server := NewConn(ex.Port("server"), cfg, echoHandler)
	t.Cleanup(func() { caller.Close(); server.Close() })
	sa := transport.AddrOf("server")

	act := caller.NewActivity()
	if _, err := caller.Call(sa, act, 1, 7, 3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitSessionState(t, caller, sa, sessLegacy)
	cs := caller.Stats()
	if cs.HellosSent != defaultHelloAttempts {
		t.Fatalf("HellosSent = %d, want %d", cs.HellosSent, defaultHelloAttempts)
	}
	if cs.SessionsLegacy != 1 || cs.SessionsNegotiated != 0 {
		t.Fatalf("stats = %+v", cs)
	}
}

// TestSessionHelloRacesFirstCalls fires a burst of first calls from many
// goroutines at a fresh connection: exactly one hello exchange may run (no
// double negotiation), nothing deadlocks, and every call completes.
func TestSessionHelloRacesFirstCalls(t *testing.T) {
	ex := transport.NewExchange()
	caller, _, sa := pair(t, ex, fastCfg(), echoHandler)
	const callers = 16
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			act := caller.NewActivity()
			for seq := uint32(1); seq <= 8; seq++ {
				if _, err := caller.Call(sa, act, seq, 7, 3, []byte("race")); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	waitSessionState(t, caller, sa, sessNegotiated)
	cs := caller.Stats()
	if cs.SessionsNegotiated != 1 {
		t.Fatalf("SessionsNegotiated = %d, want exactly 1", cs.SessionsNegotiated)
	}
	if cs.HellosSent > defaultHelloAttempts {
		t.Fatalf("HellosSent = %d, want <= %d (one negotiation)", cs.HellosSent, defaultHelloAttempts)
	}
}

// TestSessionNegotiationUnderLoss runs the handshake across a lossy link
// (the verify.sh race:session-negotiation step): hello or ack drops must
// end in one of the two terminal states — negotiated via a retry, or
// legacy after the attempts run out — while calls keep completing.
func TestSessionNegotiationUnderLoss(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		ex := transport.NewExchange()
		cfg := fastCfg()
		cfg.HelloTimeout = 10 * time.Millisecond
		caller, _, sa, _ := faultyPair(t, ex, cfg, echoHandler, faultnet.Loss(0.3), seed)
		act := caller.NewActivity()
		for seq := uint32(1); seq <= 20; seq++ {
			if _, err := caller.Call(sa, act, seq, 7, 3, []byte("lossy")); err != nil {
				t.Fatalf("seed %d seq %d: %v", seed, seq, err)
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			ch := caller.lookupChannel(sa)
			st := sessStateOf(ch.sess.Load())
			if st == sessNegotiated || st == sessLegacy {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: negotiation never reached a terminal state (%s)",
					seed, sessStateName(st))
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestSessionRenegotiatesAfterEviction: an idle-evicted channel loses its
// cached agreement with the rest of its state; the next call negotiates
// afresh instead of assuming stale capabilities.
func TestSessionRenegotiatesAfterEviction(t *testing.T) {
	ex := transport.NewExchange()
	cfg := fastCfg()
	cfg.PeerIdleTimeout = 30 * time.Millisecond
	caller, _, sa := pair(t, ex, cfg, echoHandler)
	act := caller.NewActivity()
	if _, err := caller.Call(sa, act, 1, 7, 3, nil); err != nil {
		t.Fatal(err)
	}
	waitSessionState(t, caller, sa, sessNegotiated)
	deadline := time.Now().Add(5 * time.Second)
	for caller.lookupChannel(sa) != nil {
		if time.Now().After(deadline) {
			t.Fatal("channel never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := caller.Call(sa, act, 2, 7, 3, nil); err != nil {
		t.Fatal(err)
	}
	waitSessionState(t, caller, sa, sessNegotiated)
	if n := caller.Stats().SessionsNegotiated; n != 2 {
		t.Fatalf("SessionsNegotiated = %d, want 2 (re-negotiated after eviction)", n)
	}
}
