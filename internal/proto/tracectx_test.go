package proto

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// tcCapture is a TraceHandler that records every received trace context.
type tcCapture struct {
	mu  sync.Mutex
	got []wire.TraceCtx
}

func (tc *tcCapture) handle(_ transport.Addr, c wire.TraceCtx, _ uint32, _ uint16, _ []byte) ([]byte, error) {
	tc.mu.Lock()
	tc.got = append(tc.got, c)
	tc.mu.Unlock()
	return nil, nil
}

func (tc *tcCapture) last(t *testing.T) wire.TraceCtx {
	t.Helper()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if len(tc.got) == 0 {
		t.Fatal("server received no calls")
	}
	return tc.got[len(tc.got)-1]
}

// tracedPair builds a caller and a trace-aware server on one exchange.
func tracedPair(t *testing.T, cfg Config, th TraceHandler) (caller *Conn, server *Conn, sa transport.Addr) {
	t.Helper()
	ex := transport.NewExchange()
	cp := ex.Port("caller")
	sp := ex.Port("server")
	caller = NewConn(cp, cfg, nil)
	server = NewConnTraced(sp, cfg, th)
	t.Cleanup(func() {
		caller.Close()
		server.Close()
	})
	return caller, server, transport.AddrOf("server")
}

func findRec(recs []TraceRecord, seq uint32) *TraceRecord {
	for i := range recs {
		if recs[i].Seq == seq {
			return &recs[i]
		}
	}
	return nil
}

// TestTraceCtxPropagation: once FeatTrace is negotiated, a sampled call
// ships a trace-context prefix whose ids match the caller's stage record,
// and the server sees it.
func TestTraceCtxPropagation(t *testing.T) {
	cap := &tcCapture{}
	caller, server, sa := tracedPair(t, fastCfg(), cap.handle)
	caller.SetTracing(1, 64)
	server.SetTracing(1, 64)
	act := caller.NewActivity()
	// The first call rides the pending (legacy-implied) session: no prefix.
	if _, err := caller.Call(sa, act, 1, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	waitSessionState(t, caller, sa, sessNegotiated)
	if _, err := caller.Call(sa, act, 2, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	got := cap.last(t)
	if !got.Sampled() {
		t.Fatalf("negotiated call carried no sampled trace context: %+v", got)
	}
	rec := findRec(caller.TraceRecords(), 2)
	if rec == nil {
		t.Fatal("caller has no trace record for seq 2")
	}
	if rec.TraceID != got.TraceID || rec.SpanID != got.SpanID {
		t.Fatalf("wire ids (%x,%x) != caller record ids (%x,%x)",
			got.TraceID, got.SpanID, rec.TraceID, rec.SpanID)
	}
	if rec.Parent != 0 {
		t.Fatalf("root call has parent %x", rec.Parent)
	}
	// Both halves join into one span carrying both sides' stamps.
	srec := findRec(server.TraceRecords(), 2)
	if srec == nil {
		t.Fatal("server has no trace record for seq 2")
	}
	if srec.SpanID != rec.SpanID {
		t.Fatalf("server span %x != caller span %x", srec.SpanID, rec.SpanID)
	}
	spans := AssembleSpans(caller.TraceRecords(), server.TraceRecords())
	var joined *Span
	for i := range spans {
		if spans[i].Seq == 2 {
			joined = &spans[i]
		}
	}
	if joined == nil {
		t.Fatal("no assembled span for seq 2")
	}
	if joined.TS[StageStart] == 0 || joined.TS[StageSrvRecv] == 0 || joined.TS[StageWakeup] == 0 {
		t.Fatalf("joined span missing stamps from one side: %+v", joined.TS)
	}
}

// TestTraceCtxInheritance: a call issued under a context carrying a sampled
// parent trace joins that trace — inherited trace id, fresh child span,
// parent link — even when the local sampler would not have picked it.
func TestTraceCtxInheritance(t *testing.T) {
	cap := &tcCapture{}
	caller, _, sa := tracedPair(t, fastCfg(), cap.handle)
	caller.SetTracing(1000000, 64) // sampler effectively never fires on its own
	act := caller.NewActivity()
	if _, err := caller.Call(sa, act, 1, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	waitSessionState(t, caller, sa, sessNegotiated)

	parent := wire.TraceCtx{TraceID: 0xfeedf00d, SpanID: 0xbeef, Flags: wire.TraceFlagSampled}
	ctx := ContextWithTrace(context.Background(), parent)
	if _, err := caller.CallBufCtx(ctx, sa, act, 2, 1, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	got := cap.last(t)
	if got.TraceID != parent.TraceID {
		t.Fatalf("child call trace id %x, want inherited %x", got.TraceID, parent.TraceID)
	}
	if !got.Sampled() || got.SpanID == 0 || got.SpanID == parent.SpanID {
		t.Fatalf("child span id %x invalid (parent span %x)", got.SpanID, parent.SpanID)
	}
	rec := findRec(caller.TraceRecords(), 2)
	if rec == nil {
		t.Fatal("parent-forced call left no trace record")
	}
	if rec.Parent != parent.SpanID || rec.TraceID != parent.TraceID {
		t.Fatalf("record parent/trace = %x/%x, want %x/%x",
			rec.Parent, rec.TraceID, parent.SpanID, parent.TraceID)
	}

	// With tracing fully off, the ambient context is ignored entirely.
	caller.SetTracing(0, 0)
	if _, err := caller.CallBufCtx(ctx, sa, act, 3, 1, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := cap.last(t); got.Valid() {
		t.Fatalf("tracing-off call still shipped a trace context: %+v", got)
	}
}

// TestTraceLegacyV0Compat: against a hello-less v0 peer the caller falls
// back to the legacy session — no trace-context prefix ever reaches the
// wire (the old binary would misparse it as arguments), the legacy
// FlagTraced stage accounting still works end to end, and the fallback
// itself lands in the flight recorder.
func TestTraceLegacyV0Compat(t *testing.T) {
	ex := transport.NewExchange()
	cp := ex.Port("caller")
	sp := ex.Port("server")
	ccfg := fastCfg()
	ccfg.HelloTimeout = 10 * time.Millisecond
	scfg := fastCfg()
	scfg.DisableHello = true
	caller := NewConn(cp, ccfg, nil)
	server := NewConn(sp, scfg, echoHandler)
	t.Cleanup(func() {
		caller.Close()
		server.Close()
	})
	sa := transport.AddrOf("server")
	caller.SetTracing(1, 64)
	server.SetTracing(1, 64)
	act := caller.NewActivity()
	payload := []byte("unchanged across the v0 boundary")
	want := append(append([]byte(nil), payload...), 0xEE) // echoHandler's marker
	for i := 0; i < 5; i++ {
		res, err := caller.Call(sa, act, uint32(i+1), 1, 1, payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res, want) {
			t.Fatalf("call %d: echo mismatch (prefix leaked into args?): %q", i+1, res)
		}
	}
	waitSessionState(t, caller, sa, sessLegacy)
	for i := 5; i < 10; i++ {
		res, err := caller.Call(sa, act, uint32(i+1), 1, 1, payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res, want) {
			t.Fatalf("legacy call %d: echo mismatch: %q", i+1, res)
		}
	}
	// PR 3's stage accounting joins exactly as before the trace context
	// existed: the server stamps via FlagTraced, keyed by (activity, seq).
	rep := Account(caller.TraceRecords(), server.TraceRecords())
	if rep.Calls < 8 {
		t.Fatalf("accounted only %d of 10 legacy calls", rep.Calls)
	}
	srec := findRec(server.TraceRecords(), 10)
	if srec == nil || !srec.Stamped(StageSrvRecv) {
		t.Fatal("server missed stage stamps on a legacy traced call")
	}
	if srec.SpanID != 0 {
		t.Fatalf("legacy server record carries a span id %x", srec.SpanID)
	}
	// The fallback was recorded as an anomaly.
	var sawFallback bool
	for _, ev := range caller.FlightEvents() {
		if ev.Kind == "session-fallback" {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("session fallback missing from the flight recorder")
	}
}

// TestTraceCtxMultiFragment: the prefix rides in fragment 0 of a fragmented
// call without corrupting reassembly, and the span still joins both halves.
func TestTraceCtxMultiFragment(t *testing.T) {
	ex := transport.NewExchange()
	cp := ex.Port("caller")
	sp := ex.Port("server")
	caller := NewConn(cp, fastCfg(), nil)
	server := NewConn(sp, fastCfg(), echoHandler)
	t.Cleanup(func() {
		caller.Close()
		server.Close()
	})
	sa := transport.AddrOf("server")
	caller.SetTracing(1, 64)
	server.SetTracing(1, 64)
	act := caller.NewActivity()
	if _, err := caller.Call(sa, act, 1, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	waitSessionState(t, caller, sa, sessNegotiated)

	args := bytes.Repeat([]byte("0123456789abcdef"), 3*wire.MaxSinglePacketPayload/16)
	want := append(append([]byte(nil), args...), 0xEE) // echoHandler's marker
	res, err := caller.Call(sa, act, 2, 1, 1, args)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, want) {
		t.Fatalf("fragmented echo mismatch: %d bytes back, want %d", len(res), len(want))
	}
	spans := AssembleSpans(caller.TraceRecords(), server.TraceRecords())
	var joined *Span
	for i := range spans {
		if spans[i].Seq == 2 {
			joined = &spans[i]
		}
	}
	if joined == nil {
		t.Fatal("no span for the fragmented call")
	}
	if joined.SpanID == 0 || joined.TS[StageSrvRecv] == 0 || joined.TS[StageWakeup] == 0 {
		t.Fatalf("fragmented span incomplete: %+v", joined)
	}
}

// TestFlightRecorderAllocBudget: recording an anomaly allocates nothing —
// the ring is embedded and every store is atomic.
func TestFlightRecorderAllocBudget(t *testing.T) {
	var f flightRecorder
	if a := testing.AllocsPerRun(1000, func() {
		f.record(FlightRetransmit, 7, 3, 1)
	}); a != 0 {
		t.Fatalf("flight record allocates %.2f objects/event, want 0", a)
	}
	var w burstWindow
	if a := testing.AllocsPerRun(1000, func() {
		w.hit(int64(time.Second), 1<<62)
	}); a != 0 {
		t.Fatalf("burst window allocates %.2f objects/event, want 0", a)
	}
}

// TestFlightTimeoutDump: a forced call timeout auto-dumps the ring, and the
// dump contains the triggering call's events.
func TestFlightTimeoutDump(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	ex := transport.NewExchange()
	cfg := fastCfg()
	cfg.RetransInterval = 30 * time.Millisecond
	cfg.CallTimeout = 150 * time.Millisecond
	caller, _, sa := pair(t, ex, cfg, func(transport.Addr, uint32, uint16, []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	act := caller.NewActivity()
	if _, err := caller.Call(sa, act, 1, 1, 1, nil); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	dump, n := caller.LastFlightDump()
	if n < 1 || dump == nil {
		t.Fatalf("no flight dump after a call timeout (dumps=%d)", n)
	}
	if dump.Trigger != "call-timeout" {
		t.Fatalf("dump trigger %q, want call-timeout", dump.Trigger)
	}
	var sawTimeout bool
	for _, ev := range dump.Events {
		if ev.Kind == "timeout" && ev.Activity == act && ev.Seq == 1 {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatalf("dump lacks the triggering call's timeout event: %+v", dump.Events)
	}
}

// TestFlightOverloadBurstDump: crossing the overload-burst threshold within
// the window dumps the ring exactly once.
func TestFlightOverloadBurstDump(t *testing.T) {
	ex := transport.NewExchange()
	caller, _, _ := pair(t, ex, fastCfg(), nilHandler)
	for i := 0; i < flightOverloadBurst; i++ {
		caller.noteOverloadRecv(9, uint32(i+1))
	}
	dump, n := caller.LastFlightDump()
	if n != 1 || dump == nil {
		t.Fatalf("dumps = %d after crossing the burst threshold, want 1", n)
	}
	if dump.Trigger != "overload-burst" {
		t.Fatalf("dump trigger %q, want overload-burst", dump.Trigger)
	}
	var overloads int
	for _, ev := range dump.Events {
		if ev.Kind == "overload" {
			overloads++
		}
	}
	if overloads != flightOverloadBurst {
		t.Fatalf("dump holds %d overload events, want %d", overloads, flightOverloadBurst)
	}
}
