// Package proto implements the RPC packet-exchange protocol over an
// unreliable datagram transport, following Birrell & Nelson's Cedar RPC
// design as Firefly RPC did:
//
//   - On the fast path a call is one packet and its result is one packet;
//     the result implicitly acknowledges the call, and the activity's next
//     call implicitly acknowledges the result. No extra packets.
//   - Larger arguments/results travel as fragments with stop-and-wait
//     explicit acknowledgements on all but the last fragment.
//   - Lost packets are recovered by retransmission with exponential
//     backoff; retransmitted calls ask for an explicit acknowledgement so a
//     busy server can say "still working" without completing.
//   - Servers suppress duplicate calls per activity and retain the last
//     result packet for retransmission until the activity's next call.
//
// Beyond the 1989 single-segment design, the connection state is organized
// per peer: each remote endpoint gets a channel object holding its own
// call-table shard, duplicate-suppression state, and Jacobson/Karels
// round-trip estimator, managed through a sharded peer map that evicts
// idle peers. A single retransmission-engine goroutine drives every
// pending call's timer from one heap, which is what makes the asynchronous
// call API (Go/Pending) cost no goroutine per in-flight call. Calls take a
// context.Context: deadlines bound the whole exchange (winning over the
// retry budget) and cancellation releases the call-table entry and pooled
// buffers immediately, notifying the server with a best-effort cancel
// packet.
//
// The fast path is engineered the way §4.2 of the paper prescribes: packet
// buffers come from a pool and are recycled rather than allocated (the
// paper's on-the-fly receive-buffer replacement), per-call bookkeeping
// objects are reused, counters are lock-free atomics, and the locks are
// per-peer and per-concern (outgoing calls, server activities, pings) so
// concurrent caller threads and the receive goroutine never serialize on
// one global mutex.
package proto

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/overload"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// Errors.
var (
	ErrTimeout    = errors.New("proto: call timed out after retransmission limit")
	ErrRejected   = errors.New("proto: call rejected by server (unknown interface or procedure)")
	ErrOverloaded = errors.New("proto: call shed by server admission control")
	ErrClosed     = errors.New("proto: connection closed")
	ErrTooLarge   = errors.New("proto: message exceeds fragment limit")
)

// ackInProgress in an ack's FragIndex means "call received, still
// executing" — it resets the caller's retry budget without completing.
const ackInProgress = 0xffff

// flagAckResult distinguishes an acknowledgement of a result fragment
// (caller → server) from one of a call fragment (server → caller).
const flagAckResult = 1 << 2

// maxFragments bounds a single call or result (1440 B × 256 = 360 KB).
const maxFragments = 256

// Config tunes the protocol engine.
type Config struct {
	// RetransInterval is the initial retransmission timeout for peers with
	// no round-trip estimate, and the ceiling for peers with one; it
	// doubles on each retry up to 8× the initial value. The Firefly used
	// ~600 ms.
	RetransInterval time.Duration
	// MaxRetries bounds retransmissions per fragment before ErrTimeout.
	MaxRetries int
	// Workers is the server-side concurrency: the number of calls that may
	// execute simultaneously (the Firefly kept a pool of server threads
	// waiting in the call table).
	Workers int
	// CallTimeout, when positive, bounds each call's total duration. It is
	// enforced by the retransmission engine, so it holds even while
	// retransmissions keep succeeding — a server that answers every retry
	// with "still executing" cannot stretch a call past its deadline. A
	// caller context with an earlier deadline tightens it further.
	CallTimeout time.Duration
	// PeerIdleTimeout, when positive, evicts a peer's channel (call-table
	// shard, duplicate state, retained result frames, RTT estimate) after
	// it has been quiet this long with nothing in flight. Zero disables
	// eviction.
	PeerIdleTimeout time.Duration
	// Admission, when its Capacity is positive, bounds the server dispatch
	// queue and sheds excess calls with a wire-level overload rejection
	// (see internal/overload for the policies). Zero keeps the unbounded
	// channel dispatch, so the fast path is untouched by default.
	Admission overload.Config
	// DisableHello makes this endpoint behave as a pre-session binary: it
	// never initiates hello negotiation and drops hello packets as bad
	// frames, speaking the implicit v0 legacy session with every peer.
	// Exists for old-binary interop tests; leave false in production.
	DisableHello bool
	// HelloTimeout is the wait per hello attempt before retrying (and,
	// after the attempts run out, falling back to the legacy session).
	// Zero means RetransInterval.
	HelloTimeout time.Duration
	// AdvertiseFeatures, when non-zero, narrows the feature bitset this
	// endpoint advertises in hellos (the default is every feature the
	// binary implements). Used to exercise feature-downgrade paths.
	AdvertiseFeatures uint64
}

// DefaultConfig mirrors sensible Firefly-like settings scaled to modern
// networks.
func DefaultConfig() Config {
	return Config{
		RetransInterval: 50 * time.Millisecond,
		MaxRetries:      10,
		Workers:         8,
		PeerIdleTimeout: 2 * time.Minute,
	}
}

// Handler executes an incoming call and returns the result payload.
// A non-nil error turns into a reject packet. args is only valid until the
// handler returns: the buffer behind it is recycled for the activity's next
// call, exactly as the Firefly reused call-table packet buffers. Handlers
// that need the arguments afterwards must copy them.
type Handler func(src transport.Addr, iface uint32, proc uint16, args []byte) ([]byte, error)

// TraceHandler is a Handler that also receives the call's distributed
// trace context (zero when the caller sent none). Dispatch layers that
// re-emit the context on chained calls — core.Node threading it into the
// handler's context.Context — serve with NewConnTraced; everything else is
// identical to Handler.
type TraceHandler func(src transport.Addr, tc wire.TraceCtx, iface uint32, proc uint16, args []byte) ([]byte, error)

// Stats counts protocol events. It is the snapshot type returned by
// Conn.Stats; the live counters are lock-free atomics.
type Stats struct {
	CallsSent      int64
	CallsCompleted int64
	CallsServed    int64
	Retransmits    int64
	DupCalls       int64
	DupFrags       int64
	ResultRetrans  int64
	AcksSent       int64
	InProgressAcks int64
	Rejects        int64
	BadFrames      int64
	StaleDrops     int64
	Probes         int64
	Cancels        int64 // cancel notices received (caller abandoned a call)
	PeersEvicted   int64 // idle peer channels reclaimed
	CallsShed      int64 // server: calls shed by admission control
	Overloads      int64 // caller: overload rejections received

	// Session negotiation (see session.go).
	HellosSent         int64 // hello packets transmitted (incl. retries)
	SessionsNegotiated int64 // channels that concluded a hello agreement
	SessionsLegacy     int64 // channels that fell back to the v0 session
	HelloRejects       int64 // hellos/acks refused for version mismatch
}

// statCounters is the live, contention-free form of Stats: each event is a
// single atomic add, with no mutex on the fast path (§4.2's "fewer cycles
// on the fast path" applied to bookkeeping).
type statCounters struct {
	callsSent      atomic.Int64
	callsCompleted atomic.Int64
	callsServed    atomic.Int64
	retransmits    atomic.Int64
	dupCalls       atomic.Int64
	dupFrags       atomic.Int64
	resultRetrans  atomic.Int64
	acksSent       atomic.Int64
	inProgressAcks atomic.Int64
	rejects        atomic.Int64
	badFrames      atomic.Int64
	staleDrops     atomic.Int64
	probes         atomic.Int64
	cancels        atomic.Int64
	peersEvicted   atomic.Int64
	callsShed      atomic.Int64
	overloads      atomic.Int64

	hellosSent         atomic.Int64
	sessionsNegotiated atomic.Int64
	sessionsLegacy     atomic.Int64
	helloRejects       atomic.Int64
}

func (s *statCounters) snapshot() Stats {
	return Stats{
		CallsSent:      s.callsSent.Load(),
		CallsCompleted: s.callsCompleted.Load(),
		CallsServed:    s.callsServed.Load(),
		Retransmits:    s.retransmits.Load(),
		DupCalls:       s.dupCalls.Load(),
		DupFrags:       s.dupFrags.Load(),
		ResultRetrans:  s.resultRetrans.Load(),
		AcksSent:       s.acksSent.Load(),
		InProgressAcks: s.inProgressAcks.Load(),
		Rejects:        s.rejects.Load(),
		BadFrames:      s.badFrames.Load(),
		StaleDrops:     s.staleDrops.Load(),
		Probes:         s.probes.Load(),
		Cancels:        s.cancels.Load(),
		PeersEvicted:   s.peersEvicted.Load(),
		CallsShed:      s.callsShed.Load(),
		Overloads:      s.overloads.Load(),

		HellosSent:         s.hellosSent.Load(),
		SessionsNegotiated: s.sessionsNegotiated.Load(),
		SessionsLegacy:     s.sessionsLegacy.Load(),
		HelloRejects:       s.helloRejects.Load(),
	}
}

// Conn is one protocol endpoint; it can originate calls and serve them.
//
// Per-peer state (outgoing calls, server activities, RTT estimates) lives
// in channel objects behind a sharded peer map; only pings and the
// retransmission heap are Conn-global, each behind its own lock. No code
// path holds two of these locks at once except the documented
// retransMu → outCall.mu nesting in the retransmission engine.
type Conn struct {
	tr       transport.Transport
	cfg      Config
	handler  Handler      // immutable after NewConn
	thandler TraceHandler // immutable; set by NewConnTraced instead of handler

	closed atomic.Bool

	// peers is the sharded per-peer channel directory.
	peers peerMap

	pingsMu sync.Mutex
	pings   map[uint32]chan struct{}
	pingSeq uint32

	activityCtr atomic.Uint64

	// Session negotiation identity (session.go): the version range this
	// endpoint speaks and the feature set it advertises. Immutable after
	// NewConn; per-peer negotiation state lives on the channel. The
	// version fields exist as fields (rather than reading the wire
	// constants at use sites) so mismatch tests can impersonate a future
	// binary.
	helloVersion    uint16
	helloMinVersion uint16
	localFeatures   uint64
	helloNonce      atomic.Uint32

	// Retransmission engine state: a min-heap of pending calls ordered by
	// next-fire time, drained by the retransLoop goroutine. earliestNs is
	// the engine's published wake time so schedulers know when a kick is
	// needed. All guarded by retransMu.
	retransMu    sync.Mutex
	rheap        []*outCall
	earliestNs   int64
	retransSched uint64 // schedules since startup; lets the engine see recent traffic
	retransKick  chan struct{}

	// Server execution: a fixed pool of worker goroutines drains work, the
	// real-stack analogue of the Firefly's pool of server threads waiting
	// in the call table. workQuit stops them (and the retransmission
	// engine) on Close. When cfg.Admission enables a bounded queue, admit
	// replaces the channel and the workers drain it instead.
	work     chan execReq
	workQuit chan struct{}
	admit    *overload.Queue[execReq]

	// frames recycles outgoing packet buffers (§4.2's buffer management
	// that avoids allocation).
	frames buffer.FramePool

	// sq is the opportunistic batching send queue, non-nil only when the
	// transport offers a live batched datapath (see sendq.go). Every
	// outgoing frame goes through c.send, which routes here when engaged.
	sq *sendQueue

	stats statCounters

	// trace is the observability switch: per-call stage tracing into a
	// fixed record ring (sampled 1-in-N) plus per-peer and per-method
	// latency histograms. Disabled (the default), the call path pays one
	// atomic load; see trace.go.
	trace tracer

	// methods is the per-method latency histogram table, populated only
	// while tracing is enabled.
	methods methodTable

	// Distributed-trace span identifiers (tracectx.go): a per-Conn
	// splitmix64 stream. spanSeed is immutable after NewConn.
	spanSeed uint64
	spanCtr  atomic.Uint64

	// flight is the always-on anomaly recorder (flight.go): a fixed
	// all-atomic event ring plus its dump triggers, embedded so recording
	// never allocates.
	flight flightRecorder
}

// execReq hands one complete call to a server worker. The fragment data is
// snapshotted here when the call completes reassembly, so workers never
// touch shared maps: args holds a single-packet call's payload, frags a
// multi-packet call's pieces (joined by the worker, outside any lock).
type execReq struct {
	act   *serverAct
	hdr   wire.RPCHeader
	args  []byte
	frags map[uint16][]byte
	// trace carries the server-side stage record for a FlagTraced call
	// through the dispatch queue to the worker; nil when not traced.
	trace *traceRec
	// budgetNs is the caller's remaining deadline budget at arrival
	// (from the call header's FlagBudget Hint); 0 when unknown. Only the
	// admission queue's Deadline policy consumes it.
	budgetNs int64
	// tc is the call's distributed trace context (zero when the caller
	// sent none), handed to a TraceHandler for downstream re-emission.
	tc wire.TraceCtx
}

type callKey struct {
	activity uint64
	seq      uint32
}

// fragAck is one explicit fragment acknowledgement. It carries the full
// call identity so a stale ack — of an earlier fragment, an earlier call,
// or a previous incarnation of a pooled channel — can never satisfy the
// wrong wait.
type fragAck struct {
	activity uint64
	seq      uint32
	idx      uint16
}

// outCall is an outstanding outgoing call. outCalls are pooled and reused
// across calls; every completion path re-verifies key under mu so a stale
// reference from a previous incarnation cannot touch the current call.
//
// Retransmission state (frame, interval, nextAt, deadline, retries) is
// guarded by mu and driven by the Conn's retransmission engine; the heap
// bookkeeping fields (heapAt, heapIdx, inHeap) are guarded by
// Conn.retransMu.
type outCall struct {
	mu    sync.Mutex
	key   callKey
	dst   transport.Addr
	done  chan struct{} // fresh per call; closed exactly once on finish
	ackCh chan fragAck  // reused; acks of our call fragments
	timer *time.Timer   // reused across fragment sends and pings

	// Retransmission engine state.
	frame    *buffer.Frame // retained final call fragment
	interval time.Duration // current backoff interval
	nextAt   time.Time     // authoritative next retransmission time
	deadline time.Time     // absolute call deadline; zero = none
	sentAt   time.Time     // when the final fragment was first sent (RTT sample)
	retries  int

	// Heap bookkeeping (guarded by Conn.retransMu, not mu).
	heapAt  time.Time
	heapIdx int
	inHeap  bool

	resBuf   []byte            // caller-provided result space (may be nil)
	resFrags map[uint16][]byte // lazy: only multi-fragment results
	resCount uint16
	result   []byte
	err      error
	finished bool

	// Observability state (guarded by mu): the call's interface/procedure
	// identity for per-method histograms, and the sampled stage record
	// (nil for unsampled calls and whenever tracing is disabled).
	iface uint32
	proc  uint16
	trace *traceRec
}

// outCallPool recycles outCall objects with their channels and timers, so
// the per-call setup cost is one done-channel allocation.
var outCallPool = sync.Pool{New: func() any {
	return &outCall{
		ackCh: make(chan fragAck, maxFragments),
	}
}}

// getOutCall readies a pooled outCall for one call. Stale acks from a
// previous incarnation are drained.
func getOutCall(k callKey, dst transport.Addr, resBuf []byte) *outCall {
	oc := outCallPool.Get().(*outCall)
	oc.mu.Lock()
	oc.key = k
	oc.dst = dst
	oc.resBuf = resBuf
	oc.resFrags = nil
	oc.resCount = 0
	oc.result = nil
	oc.err = nil
	oc.finished = false
	oc.frame = nil
	oc.retries = 0
	oc.interval = 0
	oc.nextAt = time.Time{}
	oc.deadline = time.Time{}
	oc.sentAt = time.Time{}
	oc.iface = 0
	oc.proc = 0
	oc.trace = nil
	oc.done = make(chan struct{})
	oc.mu.Unlock()
	for {
		select {
		case <-oc.ackCh:
		default:
			return oc
		}
	}
}

// putOutCall returns a finished outCall to the pool.
func putOutCall(oc *outCall) {
	oc.mu.Lock()
	oc.dst = nil
	oc.resBuf = nil
	oc.resFrags = nil
	oc.result = nil
	oc.frame = nil
	oc.trace = nil
	oc.mu.Unlock()
	outCallPool.Put(oc)
}

// serverAct is the per-activity server state within a peer's channel:
// duplicate suppression and the retained result. Mutable fields are
// guarded by the owning channel's actsMu; activity, src, and ch are
// immutable after creation.
type serverAct struct {
	activity  uint64
	src       transport.Addr
	ch        *channel
	lastSeq   uint32
	phase     int // receiving, executing, done
	abandoned bool
	// argBuf is the recycled single-packet argument buffer: each new call
	// takes it (or allocates if an overlapping execution still owns it) and
	// the worker returns it when done, so steady-state calls do not
	// allocate for arguments.
	argBuf []byte
	// frags holds a multi-packet call under reassembly; nil on the
	// single-packet fast path.
	frags map[uint16][]byte
	count uint16
	hdr   wire.RPCHeader
	// tc is the current call's trace context, parsed from fragment 0's
	// FlagTraceCtx prefix; zero for untraced calls and legacy peers.
	tc    wire.TraceCtx
	ackCh chan fragAck // acks of our result fragments; lazy, multi-frag only
	// lastResultFrame is the final packet of the last result, retained in
	// its pooled buffer for retransmission until the activity's next call
	// recycles it — the call-table retention scheme of §4.2.
	lastResultFrame *buffer.Frame
}

const (
	phaseReceiving = iota
	phaseExecuting
	phaseDone
)

// NewConn wraps a transport. handler may be nil for a pure caller.
func NewConn(tr transport.Transport, cfg Config, handler Handler) *Conn {
	return newConn(tr, cfg, handler, nil)
}

// NewConnTraced is NewConn for a trace-aware dispatch layer: the handler
// additionally receives each call's distributed trace context so it can
// re-emit it on chained calls (core.Node builds a context.Context from it).
func NewConnTraced(tr transport.Transport, cfg Config, handler TraceHandler) *Conn {
	return newConn(tr, cfg, nil, handler)
}

func newConn(tr transport.Transport, cfg Config, handler Handler, thandler TraceHandler) *Conn {
	if cfg.RetransInterval <= 0 {
		cfg.RetransInterval = DefaultConfig().RetransInterval
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultConfig().MaxRetries
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultConfig().Workers
	}
	c := &Conn{
		tr:          tr,
		cfg:         cfg,
		pings:       make(map[uint32]chan struct{}),
		handler:     handler,
		thandler:    thandler,
		work:        make(chan execReq, 8*cfg.Workers),
		workQuit:    make(chan struct{}),
		retransKick: make(chan struct{}, 1),
		earliestNs:  int64(1) << 62,

		helloVersion:    wire.SessionVersion,
		helloMinVersion: wire.SessionMinVersion,
		localFeatures:   defaultFeatures,
		spanSeed:        hashString(tr.LocalAddr().String()) ^ uint64(time.Now().UnixNano()),
	}
	if cfg.AdvertiseFeatures != 0 {
		c.localFeatures = cfg.AdvertiseFeatures
	}
	for i := range c.peers.shards {
		c.peers.shards[i].peers = make(map[string]*channel)
	}
	if cfg.Admission.Capacity > 0 && (handler != nil || thandler != nil) {
		c.admit = overload.NewQueue[execReq](cfg.Admission, c.shedExec)
	}
	for i := 0; i < cfg.Workers; i++ {
		if c.admit != nil {
			go c.workerAdmit()
		} else {
			go c.worker()
		}
	}
	go c.retransLoop()
	if transport.SupportsBatch(tr) {
		c.sq = newSendQueue(c, tr.(transport.BatchSender))
	}
	tr.SetReceiver(c.onFrame)
	return c
}

// send funnels every outgoing frame: straight to the transport on the
// per-frame path, or through the batching send queue when the transport
// offers SendBatch. The frame remains owned by the caller either way.
func (c *Conn) send(dst transport.Addr, frame []byte) error {
	if c.sq != nil {
		return c.sq.enqueue(dst, frame)
	}
	return c.tr.Send(dst, frame)
}

// TransportStats exposes the underlying transport's counters (drops,
// errors, batch amortization); ok is false when the transport keeps none.
func (c *Conn) TransportStats() (transport.Stats, bool) {
	if sr, ok := c.tr.(transport.StatsReporter); ok {
		return sr.TransportStats()
	}
	return transport.Stats{}, false
}

// worker is one server thread: it waits for completed calls and executes
// them, bounding handler concurrency to cfg.Workers.
func (c *Conn) worker() {
	for {
		select {
		case req := <-c.work:
			c.execute(req)
		case <-c.workQuit:
			return
		}
	}
}

// workerAdmit is one server thread under admission control: it drains the
// bounded queue (which sheds what cannot be served in time) and feeds each
// handler's duration back into the service-time estimate.
func (c *Conn) workerAdmit() {
	for {
		req, ok := c.admit.Take()
		if !ok {
			return
		}
		start := time.Now()
		c.execute(req)
		c.admit.ObserveService(time.Since(start))
	}
}

// enqueueExec hands a completed call to the worker pool without ever
// blocking the receive path. Under admission control the bounded queue
// decides (and answers) what to shed. Otherwise, if the channel is full, a
// transient goroutine waits for room (preserving the concurrency bound) —
// allocation there is acceptable because a full queue already means the
// server is saturated.
func (c *Conn) enqueueExec(req execReq) {
	if c.admit != nil {
		c.admit.Offer(req, req.budgetNs)
		return
	}
	select {
	case c.work <- req:
	default:
		go func() {
			select {
			case c.work <- req:
			case <-c.workQuit:
				req.act.ch.executing.Add(-1)
			}
		}()
	}
}

// shedExec answers one shed call with an overload rejection on the wire —
// retained like a result, so the caller's retransmissions of the shed call
// are answered from the call table instead of re-entering the queue — and
// releases the per-call accounting the dispatch path acquired.
func (c *Conn) shedExec(req execReq, _ overload.Reason) {
	act, hdr := req.act, req.hdr
	ch := act.ch
	defer ch.executing.Add(-1)
	c.stats.callsShed.Add(1)
	c.flight.record(FlightShed, hdr.Activity, hdr.Seq, 0)
	if req.trace != nil {
		// Close out the server-side stage record so a traced shed call still
		// joins: dispatch, done, and result-sent collapse to the shed point.
		req.trace.stamp(StageSrvDispatch)
		req.trace.stamp(StageSrvDone)
		req.trace.stamp(StageSrvResultSent)
	}
	rej := wire.RPCHeader{
		Type: wire.TypeReject, Activity: hdr.Activity, Seq: hdr.Seq,
		FragCount: 1, Interface: hdr.Interface, Proc: hdr.Proc,
		Hint: wire.RejectOverload,
	}
	f := c.newFrame(rej, nil)
	_ = c.send(act.src, f.Bytes())
	c.retainResult(act, hdr.Seq, f)
	if req.args != nil {
		ch.actsMu.Lock()
		if act.argBuf == nil && !ch.evicted {
			act.argBuf = req.args[:0]
		}
		ch.actsMu.Unlock()
	}
}

// AdmissionStats reports the admission queue's counters; ok is false when
// admission control is disabled.
func (c *Conn) AdmissionStats() (s overload.Stats, ok bool) {
	if c.admit == nil {
		return s, false
	}
	return c.admit.Stats(), true
}

// NewActivity allocates a fresh activity identifier. Each calling goroutine
// (thread) should have its own, as on the Firefly.
func (c *Conn) NewActivity() uint64 {
	// Mix in some bits from the local address so two processes sharing a
	// server are unlikely to collide even if they restart.
	base := hashString(c.tr.LocalAddr().String()) & 0xffffffff
	return base<<32 | c.activityCtr.Add(1)
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Stats returns a snapshot of the counters. Each counter is read
// atomically; the snapshot is consistent in the sense that every counted
// event is reflected by at most one read.
func (c *Conn) Stats() Stats { return c.stats.snapshot() }

// LocalAddr names this endpoint.
func (c *Conn) LocalAddr() transport.Addr { return c.tr.LocalAddr() }

// Close shuts the connection down; outstanding calls fail with ErrClosed,
// every peer channel's retained result frames are released, and the worker
// pool and retransmission engine stop.
func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.workQuit)
	if c.admit != nil {
		// Sheds everything still queued (decrementing the per-channel
		// executing counts) and unblocks the admission workers.
		c.admit.Close()
	}
	c.forEachChannel(func(ch *channel) {
		ch.callsMu.Lock()
		calls := make([]*outCall, 0, len(ch.calls))
		keys := make([]callKey, 0, len(ch.calls))
		for k, oc := range ch.calls {
			calls = append(calls, oc)
			keys = append(keys, k)
		}
		ch.calls = map[callKey]*outCall{}
		ch.callsMu.Unlock()
		for i, oc := range calls {
			oc.finish(keys[i], nil, ErrClosed)
		}
		c.evictChannel(ch)
	})
	err := c.tr.Close()
	if c.sq != nil {
		// The transport is closed, so a flush blocked in SendBatch has
		// unwound; wait for the flusher to release every queued buffer.
		c.sq.wait()
	}
	return err
}

// finish completes the call identified by k. The key check makes stale
// references (a goroutine that looked an outCall up just before it was
// recycled) no-ops instead of corrupting the next call.
func (oc *outCall) finish(k callKey, result []byte, err error) {
	oc.mu.Lock()
	oc.finishLocked(k, result, err)
	oc.mu.Unlock()
}

// finishLocked is finish with oc.mu already held (the retransmission
// engine's completion path).
func (oc *outCall) finishLocked(k callKey, result []byte, err error) {
	if oc.finished || oc.key != k {
		return
	}
	oc.finished = true
	oc.result = result
	oc.err = err
	close(oc.done)
}

// maxPayload is the per-fragment payload budget.
func (c *Conn) maxPayload() int { return c.tr.MaxFrame() - wire.RPCHeaderLen }

// fragment splits a message, returning at least one (possibly empty) part.
func fragment(msg []byte, max int) [][]byte {
	if len(msg) == 0 {
		return [][]byte{nil}
	}
	var out [][]byte
	for len(msg) > 0 {
		n := len(msg)
		if n > max {
			n = max
		}
		out = append(out, msg[:n])
		msg = msg[n:]
	}
	return out
}

// newFrame assembles header+payload into a pooled frame. The caller owns
// the frame: either Release it after its last transmission or retain it
// (call/result retransmission) and Release on recycle.
func (c *Conn) newFrame(h wire.RPCHeader, payload []byte) *buffer.Frame {
	h.Version = wire.RPCVersion
	h.Length = uint32(len(payload))
	f := c.frames.Get()
	f.SetLen(wire.RPCHeaderLen + len(payload))
	b := f.Cap()
	h.MarshalTo(b)
	copy(b[wire.RPCHeaderLen:], payload)
	return f
}

// newFrameTC is newFrame with a wire.TraceCtx prefix spliced ahead of the
// payload — FlagTraceCtx's wire layout: header, 17-byte context, payload.
// The fragmentation budget in StartCall reserves the prefix bytes, so the
// frame never exceeds the transport's MaxFrame.
func (c *Conn) newFrameTC(h wire.RPCHeader, tc wire.TraceCtx, payload []byte) *buffer.Frame {
	h.Version = wire.RPCVersion
	h.Length = uint32(wire.TraceCtxLen + len(payload))
	f := c.frames.Get()
	f.SetLen(wire.RPCHeaderLen + wire.TraceCtxLen + len(payload))
	b := f.Cap()
	h.MarshalTo(b)
	tc.MarshalTo(b[wire.RPCHeaderLen:])
	copy(b[wire.RPCHeaderLen+wire.TraceCtxLen:], payload)
	return f
}

// sendFrame builds, transmits, and immediately recycles a frame — for
// packets that are never retransmitted from this buffer (acks, probes,
// rejects sent off the retention path).
func (c *Conn) sendFrame(dst transport.Addr, h wire.RPCHeader, payload []byte) error {
	f := c.newFrame(h, payload)
	err := c.send(dst, f.Bytes())
	f.Release()
	return err
}

// buildFrame assembles header+payload into a fresh heap frame. Kept for
// tests and tools that need a standalone []byte; the protocol fast path
// uses pooled frames via newFrame/sendFrame.
func buildFrame(h wire.RPCHeader, payload []byte) []byte {
	h.Version = wire.RPCVersion
	h.Length = uint32(len(payload))
	frame := make([]byte, wire.RPCHeaderLen+len(payload))
	h.MarshalTo(frame)
	copy(frame[wire.RPCHeaderLen:], payload)
	return frame
}
