// Package proto implements the RPC packet-exchange protocol over an
// unreliable datagram transport, following Birrell & Nelson's Cedar RPC
// design as Firefly RPC did:
//
//   - On the fast path a call is one packet and its result is one packet;
//     the result implicitly acknowledges the call, and the activity's next
//     call implicitly acknowledges the result. No extra packets.
//   - Larger arguments/results travel as fragments with stop-and-wait
//     explicit acknowledgements on all but the last fragment.
//   - Lost packets are recovered by retransmission with exponential
//     backoff; retransmitted calls ask for an explicit acknowledgement so a
//     busy server can say "still working" without completing.
//   - Servers suppress duplicate calls per activity and retain the last
//     result packet for retransmission until the activity's next call.
package proto

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// Errors.
var (
	ErrTimeout  = errors.New("proto: call timed out after retransmission limit")
	ErrRejected = errors.New("proto: call rejected by server (unknown interface or procedure)")
	ErrClosed   = errors.New("proto: connection closed")
	ErrTooLarge = errors.New("proto: message exceeds fragment limit")
)

// ackInProgress in an ack's FragIndex means "call received, still
// executing" — it resets the caller's retry budget without completing.
const ackInProgress = 0xffff

// flagAckResult distinguishes an acknowledgement of a result fragment
// (caller → server) from one of a call fragment (server → caller).
const flagAckResult = 1 << 2

// maxFragments bounds a single call or result (1440 B × 256 = 360 KB).
const maxFragments = 256

// Config tunes the protocol engine.
type Config struct {
	// RetransInterval is the initial retransmission timeout; it doubles on
	// each retry up to 8× the initial value. The Firefly used ~600 ms.
	RetransInterval time.Duration
	// MaxRetries bounds retransmissions per fragment before ErrTimeout.
	MaxRetries int
	// Workers is the server-side concurrency: the number of calls that may
	// execute simultaneously (the Firefly kept a pool of server threads
	// waiting in the call table).
	Workers int
}

// DefaultConfig mirrors sensible Firefly-like settings scaled to modern
// networks.
func DefaultConfig() Config {
	return Config{
		RetransInterval: 50 * time.Millisecond,
		MaxRetries:      10,
		Workers:         8,
	}
}

// Handler executes an incoming call and returns the result payload.
// A non-nil error turns into a reject packet.
type Handler func(src transport.Addr, iface uint32, proc uint16, args []byte) ([]byte, error)

// Stats counts protocol events.
type Stats struct {
	CallsSent      int64
	CallsCompleted int64
	CallsServed    int64
	Retransmits    int64
	DupCalls       int64
	DupFrags       int64
	ResultRetrans  int64
	AcksSent       int64
	InProgressAcks int64
	Rejects        int64
	BadFrames      int64
	StaleDrops     int64
	Probes         int64
}

// Conn is one protocol endpoint; it can originate calls and serve them.
type Conn struct {
	tr  transport.Transport
	cfg Config

	mu      sync.Mutex
	calls   map[callKey]*outCall
	acts    map[actKey]*serverAct
	pings   map[uint32]chan struct{}
	pingSeq uint32
	handler Handler
	closed  bool

	activityCtr atomic.Uint64
	sem         chan struct{} // server worker semaphore
	rtt         *rttTracker

	stats   Stats
	statsMu sync.Mutex
}

type callKey struct {
	activity uint64
	seq      uint32
}

type actKey struct {
	src      string
	activity uint64
}

// outCall is an outstanding outgoing call.
type outCall struct {
	key      callKey
	dst      transport.Addr
	ackCh    chan uint16   // acks of our call fragments
	progress chan struct{} // "still executing" notifications
	done     chan struct{}

	mu       sync.Mutex
	resFrags map[uint16][]byte
	resCount uint16
	result   []byte
	err      error
	finished bool
}

// serverAct is the per-(caller, activity) server state: duplicate
// suppression and the retained result.
type serverAct struct {
	key     actKey
	src     transport.Addr
	lastSeq uint32
	phase   int // receiving, executing, done
	frags   map[uint16][]byte
	count   uint16
	hdr     wire.RPCHeader
	ackCh   chan uint16 // acks of our result fragments
	// lastResultFrame is the final fragment of the last result, retained
	// for retransmission until the next call recycles it.
	lastResultFrame []byte
}

const (
	phaseReceiving = iota
	phaseExecuting
	phaseDone
)

// NewConn wraps a transport. handler may be nil for a pure caller.
func NewConn(tr transport.Transport, cfg Config, handler Handler) *Conn {
	if cfg.RetransInterval <= 0 {
		cfg.RetransInterval = DefaultConfig().RetransInterval
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultConfig().MaxRetries
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultConfig().Workers
	}
	c := &Conn{
		tr:      tr,
		cfg:     cfg,
		calls:   make(map[callKey]*outCall),
		acts:    make(map[actKey]*serverAct),
		pings:   make(map[uint32]chan struct{}),
		handler: handler,
		sem:     make(chan struct{}, cfg.Workers),
		rtt:     newRTTTracker(),
	}
	tr.SetReceiver(c.onFrame)
	return c
}

// NewActivity allocates a fresh activity identifier. Each calling goroutine
// (thread) should have its own, as on the Firefly.
func (c *Conn) NewActivity() uint64 {
	// Mix in some bits from the local address so two processes sharing a
	// server are unlikely to collide even if they restart.
	base := hashString(c.tr.LocalAddr().String()) & 0xffffffff
	return base<<32 | c.activityCtr.Add(1)
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Stats returns a snapshot of the counters.
func (c *Conn) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

func (c *Conn) count(f func(*Stats)) {
	c.statsMu.Lock()
	f(&c.stats)
	c.statsMu.Unlock()
}

// LocalAddr names this endpoint.
func (c *Conn) LocalAddr() transport.Addr { return c.tr.LocalAddr() }

// Close shuts the connection down; outstanding calls fail.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	calls := make([]*outCall, 0, len(c.calls))
	for _, oc := range c.calls {
		calls = append(calls, oc)
	}
	c.calls = map[callKey]*outCall{}
	c.mu.Unlock()
	for _, oc := range calls {
		oc.finish(nil, ErrClosed)
	}
	return c.tr.Close()
}

func (oc *outCall) finish(result []byte, err error) {
	oc.mu.Lock()
	if oc.finished {
		oc.mu.Unlock()
		return
	}
	oc.finished = true
	oc.result = result
	oc.err = err
	oc.mu.Unlock()
	close(oc.done)
}

// maxPayload is the per-fragment payload budget.
func (c *Conn) maxPayload() int { return c.tr.MaxFrame() - wire.RPCHeaderLen }

// fragment splits a message, returning at least one (possibly empty) part.
func fragment(msg []byte, max int) [][]byte {
	if len(msg) == 0 {
		return [][]byte{nil}
	}
	var out [][]byte
	for len(msg) > 0 {
		n := len(msg)
		if n > max {
			n = max
		}
		out = append(out, msg[:n])
		msg = msg[n:]
	}
	return out
}

// buildFrame assembles header+payload into a fresh frame.
func buildFrame(h wire.RPCHeader, payload []byte) []byte {
	h.Version = wire.RPCVersion
	h.Length = uint32(len(payload))
	frame := make([]byte, wire.RPCHeaderLen+len(payload))
	h.MarshalTo(frame)
	copy(frame[wire.RPCHeaderLen:], payload)
	return frame
}
