package proto

import (
	"context"
	"fmt"
	"testing"

	"fireflyrpc/internal/transport"
)

// The batching send queue must engage exactly when the transport offers a
// live batched datapath.
func TestSendQueueEngagement(t *testing.T) {
	ex := transport.NewExchange()
	memConn := NewConn(ex.Port("a"), fastCfg(), nil)
	defer memConn.Close()
	if memConn.sq != nil {
		t.Fatal("send queue engaged over the per-frame exchange")
	}

	bt, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Skip("no loopback:", err)
	}
	batchConn := NewConn(bt, fastCfg(), nil)
	defer batchConn.Close()
	if transport.SupportsBatch(bt) != (batchConn.sq != nil) {
		t.Fatalf("sq engaged=%v but SupportsBatch=%v", batchConn.sq != nil, transport.SupportsBatch(bt))
	}
}

// Full RPC exchange over the batched transport: a 64-outstanding async
// fan-out completes correctly, and every call's frames went through the
// send queue (transport send operations ≪ frames when batching is live).
func TestBatchedTransportAsyncFanout(t *testing.T) {
	st, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Skip("no loopback:", err)
	}
	ct, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	server := NewConn(st, fastCfg(), echoHandler)
	caller := NewConn(ct, fastCfg(), nil)
	defer server.Close()
	defer caller.Close()

	const rounds, width = 8, 64
	ctx := context.Background()
	acts := make([]uint64, width)
	for i := range acts {
		acts[i] = caller.NewActivity()
	}
	for r := 0; r < rounds; r++ {
		pending := make([]*Pending, width)
		for i := 0; i < width; i++ {
			p, err := caller.Go(ctx, st.LocalAddr(), acts[i], uint32(r+1), 1, 1,
				[]byte(fmt.Sprintf("m-%d-%d", r, i)), nil)
			if err != nil {
				t.Fatal(err)
			}
			pending[i] = p
		}
		for i, p := range pending {
			res, err := p.Await(ctx)
			if err != nil {
				t.Fatalf("round %d call %d: %v", r, i, err)
			}
			want := fmt.Sprintf("m-%d-%d\xee", r, i)
			if string(res) != want {
				t.Fatalf("round %d call %d: got %q want %q", r, i, res, want)
			}
		}
	}

	if transport.SupportsBatch(ct) {
		st, ok := caller.TransportStats()
		if !ok {
			t.Fatal("batched transport reports no stats")
		}
		if st.SendFrames < rounds*width {
			t.Fatalf("SendFrames = %d, want >= %d", st.SendFrames, rounds*width)
		}
		if st.SendBatches >= st.SendFrames {
			t.Fatalf("no amortization: %d batches for %d frames", st.SendBatches, st.SendFrames)
		}
		t.Logf("caller sent %d frames in %d ops (max batch %d, gso %d)",
			st.SendFrames, st.SendBatches, st.MaxSendBatch, st.GSOSends)
	}
}

// Fragmented calls (stop-and-wait acks) must work through the queue too.
func TestBatchedTransportFragmented(t *testing.T) {
	st, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Skip("no loopback:", err)
	}
	ct, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	server := NewConn(st, fastCfg(), echoHandler)
	caller := NewConn(ct, fastCfg(), nil)
	defer server.Close()
	defer caller.Close()

	big := make([]byte, 6000)
	for i := range big {
		big[i] = byte(i)
	}
	res, err := caller.Call(st.LocalAddr(), caller.NewActivity(), 1, 1, 1, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6001 {
		t.Fatalf("result len %d", len(res))
	}
}

// Close must tear the queue down without leaking pooled frames, even with
// traffic in flight.
func TestSendQueueCloseReleasesFrames(t *testing.T) {
	ct, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Skip("no loopback:", err)
	}
	st, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	server := NewConn(st, fastCfg(), echoHandler)
	caller := NewConn(ct, fastCfg(), nil)
	ctx := context.Background()
	var pending []*Pending
	for i := 0; i < 32; i++ {
		p, err := caller.Go(ctx, st.LocalAddr(), caller.NewActivity(), 1, 1, 1, []byte("x"), nil)
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	caller.Close()
	for _, p := range pending {
		// Await collects each call (ErrClosed or a result that raced the
		// close) and recycles its retained frame.
		_, _ = p.Await(ctx)
	}
	server.Close()
	if n := caller.frames.InUse(); n != 0 {
		t.Fatalf("%d pooled frames leaked through the send queue", n)
	}
}
