package proto

import (
	"time"

	"fireflyrpc/internal/wire"
)

// The retransmission engine: one goroutine per Conn drives every pending
// call's retransmission timer off a single min-heap, replacing the old
// scheme where each blocked caller goroutine ran its own timer loop. This
// is what makes the async API cheap — a thousand in-flight calls cost one
// timer goroutine, not a thousand — and it gives cancellation and per-call
// deadlines one place to be enforced.
//
// Locking: heap order (heapAt/heapIdx/inHeap) and earliestNs are guarded
// by retransMu; a call's retransmission state (frame, nextAt, interval,
// retries, deadline) by its outCall.mu. The only nesting is
// retransMu → outCall.mu, never the reverse.

// maxEngineSleep bounds the engine's nap so config changes and sweeps are
// never starved behind an empty heap.
const maxEngineSleep = time.Minute

// scheduleRetrans arms the engine for one call: the retained final-fragment
// frame will be retransmitted at `at` unless the call completes first. The
// key re-check makes a stale schedule of a recycled outCall a no-op.
func (c *Conn) scheduleRetrans(oc *outCall, k callKey, at time.Time) {
	c.retransMu.Lock()
	oc.mu.Lock()
	if !oc.finished && oc.key == k && !oc.inHeap {
		oc.heapAt = at
		oc.inHeap = true
		c.heapPush(oc)
		c.retransSched++
		if ns := at.UnixNano(); ns < c.earliestNs {
			c.earliestNs = ns
			select {
			case c.retransKick <- struct{}{}:
			default:
			}
		}
	}
	oc.mu.Unlock()
	c.retransMu.Unlock()
}

// unscheduleRetrans removes a completed call from the heap (if present) so
// the heap only ever holds genuinely pending calls.
func (c *Conn) unscheduleRetrans(oc *outCall, k callKey) {
	c.retransMu.Lock()
	oc.mu.Lock()
	if oc.inHeap && oc.key == k {
		c.heapRemove(oc.heapIdx)
		oc.inHeap = false
	}
	oc.mu.Unlock()
	c.retransMu.Unlock()
}

// retransLoop is the engine goroutine. It pops due calls, retransmits or
// times them out, and doubles as the idle-peer sweeper so no separate
// janitor goroutine exists.
func (c *Conn) retransLoop() {
	timer := time.NewTimer(maxEngineSleep)
	defer timer.Stop()
	var due []*outCall
	var lastSched uint64
	sweepEvery := c.cfg.PeerIdleTimeout / 2
	if sweepEvery <= 0 {
		sweepEvery = maxEngineSleep
	}
	nextSweep := time.Now().Add(sweepEvery)
	for {
		now := time.Now()
		due = due[:0]
		c.retransMu.Lock()
		for len(c.rheap) > 0 && !c.rheap[0].heapAt.After(now) {
			oc := c.heapPop()
			oc.inHeap = false
			due = append(due, oc)
		}
		c.retransMu.Unlock()
		for _, oc := range due {
			c.fireRetrans(oc)
		}
		if c.cfg.PeerIdleTimeout > 0 && !now.Before(nextSweep) {
			c.sweepIdle(now)
			nextSweep = now.Add(sweepEvery)
		}

		// Decide how long to sleep, publishing the wake time so a
		// concurrent schedule of an earlier deadline can kick us awake.
		base := time.Now()
		wake := base.Add(maxEngineSleep)
		if c.cfg.PeerIdleTimeout > 0 && nextSweep.Before(wake) {
			wake = nextSweep
		}
		c.retransMu.Lock()
		if len(c.rheap) > 0 {
			if c.rheap[0].heapAt.Before(wake) {
				wake = c.rheap[0].heapAt
			}
		} else if c.retransSched != lastSched {
			// The heap is empty but calls were scheduled since our last
			// wake: traffic is flowing and calls are completing faster than
			// their retransmission deadlines. Linger one floor interval
			// instead of publishing a far-future wake, so the next call's
			// schedule lands after earliestNs and needn't kick us — without
			// this, every call in a tight loop pays a channel send and an
			// engine wakeup.
			if lw := base.Add(c.cfg.RetransInterval / 8); lw.Before(wake) {
				wake = lw
			}
		}
		lastSched = c.retransSched
		c.earliestNs = wake.UnixNano()
		c.retransMu.Unlock()
		d := time.Until(wake)
		if d < 0 {
			d = 0
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
		select {
		case <-timer.C:
		case <-c.retransKick:
		case <-c.workQuit:
			return
		}
	}
}

// fireRetrans handles one due call: skip it if it completed or pushed its
// own deadline forward (an in-progress ack arrived), time it out if its
// deadline or retry budget is exhausted, otherwise retransmit the retained
// frame with the please-ack flag flipped in place and re-arm with
// exponential backoff.
func (c *Conn) fireRetrans(oc *outCall) {
	oc.mu.Lock()
	if oc.finished || oc.frame == nil {
		oc.mu.Unlock()
		return
	}
	k := oc.key
	now := time.Now()
	if !oc.deadline.IsZero() && !now.Before(oc.deadline) {
		// Per-call deadline (Config.CallTimeout or the caller's context
		// deadline) wins over the retry budget, even while retransmissions
		// are being answered with in-progress acks.
		retries := oc.retries
		oc.finishLocked(k, nil, ErrTimeout)
		oc.mu.Unlock()
		c.noteTimeout(k, retries)
		return
	}
	if oc.nextAt.After(now) {
		// Patience was reset (server said "still executing") after this
		// entry was queued: re-arm without retransmitting.
		at := oc.nextAt
		oc.mu.Unlock()
		c.scheduleRetrans(oc, k, at)
		return
	}
	oc.retries++
	if oc.retries > c.cfg.MaxRetries {
		retries := oc.retries - 1
		oc.finishLocked(k, nil, ErrTimeout)
		oc.mu.Unlock()
		c.noteTimeout(k, retries)
		return
	}
	c.stats.retransmits.Add(1)
	// Retransmissions request an explicit acknowledgement so a busy server
	// can answer without completing. The flag is flipped in place in the
	// retained frame (byte 3 of the wire header) rather than rebuilding
	// the packet.
	oc.frame.Bytes()[3] |= wire.FlagPleaseAck
	if err := c.send(oc.dst, oc.frame.Bytes()); err != nil {
		oc.finishLocked(k, nil, err)
		oc.mu.Unlock()
		return
	}
	if oc.trace != nil {
		// Stamp the (latest) retransmission so the accounting can flag
		// calls whose latency includes a retry, and count the retries.
		oc.trace.stamp(StageRetransmit)
		oc.trace.retries.Store(int32(oc.retries))
	}
	doubled := false
	if oc.interval < 8*c.cfg.RetransInterval {
		oc.interval *= 2
		doubled = true
	}
	retries := oc.retries
	intervalNs := int64(oc.interval)
	oc.nextAt = now.Add(oc.interval)
	at := oc.nextAt
	if !oc.deadline.IsZero() && oc.deadline.Before(at) {
		at = oc.deadline // fire the deadline check promptly
	}
	oc.mu.Unlock()
	c.noteRetransmit(k, retries, intervalNs, doubled)
	c.scheduleRetrans(oc, k, at)
}

// ---------------------------------------------------------------------------
// Min-heap of *outCall ordered by heapAt. Hand-rolled rather than
// container/heap so pushes and removals touch no interface values; all
// operations run under retransMu.
// ---------------------------------------------------------------------------

func (c *Conn) heapPush(oc *outCall) {
	c.rheap = append(c.rheap, oc)
	oc.heapIdx = len(c.rheap) - 1
	c.heapUp(oc.heapIdx)
}

func (c *Conn) heapPop() *outCall {
	oc := c.rheap[0]
	c.heapRemove(0)
	return oc
}

func (c *Conn) heapRemove(i int) {
	last := len(c.rheap) - 1
	if i != last {
		c.rheap[i] = c.rheap[last]
		c.rheap[i].heapIdx = i
	}
	c.rheap[last] = nil
	c.rheap = c.rheap[:last]
	if i < last {
		c.heapDown(i)
		c.heapUp(i)
	}
}

func (c *Conn) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.rheap[i].heapAt.Before(c.rheap[parent].heapAt) {
			return
		}
		c.heapSwap(i, parent)
		i = parent
	}
}

func (c *Conn) heapDown(i int) {
	n := len(c.rheap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && c.rheap[l].heapAt.Before(c.rheap[least].heapAt) {
			least = l
		}
		if r < n && c.rheap[r].heapAt.Before(c.rheap[least].heapAt) {
			least = r
		}
		if least == i {
			return
		}
		c.heapSwap(i, least)
		i = least
	}
}

func (c *Conn) heapSwap(i, j int) {
	c.rheap[i], c.rheap[j] = c.rheap[j], c.rheap[i]
	c.rheap[i].heapIdx = i
	c.rheap[j].heapIdx = j
}
