package proto

import (
	"sync/atomic"
	"time"
)

// Flight recorder: the always-on black box. Sampled stage tracing answers
// "where do the microseconds go" for healthy calls; the flight recorder
// answers "what just happened" when something goes wrong — and it is
// running before the operator thinks to turn anything on. Every Conn embeds
// a fixed, all-atomic ring that records only anomalies (retransmissions,
// RTO doublings, timeouts, sheds and overload rejections, session
// fallbacks, cancellations), so the steady-state fast path never touches
// it and recording an event is a handful of atomic stores into a
// pre-allocated slot — zero allocations, no locks, same discipline as the
// trace ring.
//
// Trigger conditions auto-dump the ring into an immutable snapshot: every
// call timeout, an ErrOverloaded burst, or a retransmit storm (the
// window-counter thresholds below). The dump is the only allocating step,
// and it happens on paths that are already failing. /debug/rpc/flight
// serves both the live ring and the last dump.

// flightRingSize fixes the per-Conn event ring: large enough to hold the
// lead-up to any trigger, small enough (~12 KB) to embed in every Conn.
const flightRingSize = 256

// Dump trigger thresholds.
const (
	// flightOverloadBurst overload rejections within flightOverloadWindow
	// dump the ring ("the server is shedding us faster than we back off").
	flightOverloadBurst  = 16
	flightOverloadWindow = int64(100 * time.Millisecond)
	// flightRetransStorm retransmissions within flightRetransWindow dump
	// the ring ("the wire or the peer is losing most of what we send").
	flightRetransStorm  = 64
	flightRetransWindow = int64(time.Second)
)

// FlightKind classifies one recorded anomaly.
type FlightKind uint8

const (
	// FlightRetransmit: a call fragment was retransmitted (arg = retry #).
	FlightRetransmit FlightKind = iota + 1
	// FlightRTOBackoff: the retransmission interval doubled (arg = new ns).
	FlightRTOBackoff
	// FlightTimeout: a call failed with ErrTimeout (arg = retries spent).
	FlightTimeout
	// FlightShed: the server's admission control shed a call.
	FlightShed
	// FlightReject: the caller received a dispatch rejection.
	FlightReject
	// FlightOverload: the caller received an overload rejection.
	FlightOverload
	// FlightSessionFallback: hello negotiation gave up; the channel fell
	// back to the legacy v0 session (arg = attempts).
	FlightSessionFallback
	// FlightCancelRecv: the server learned a caller abandoned a call.
	FlightCancelRecv
	// FlightCancelSent: this caller abandoned a call (context cancelled).
	FlightCancelSent
)

var flightKindNames = [...]string{
	"", "retransmit", "rto-backoff", "timeout", "shed", "reject",
	"overload", "session-fallback", "cancel-recv", "cancel-sent",
}

// String names the event kind.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) && k != 0 {
		return flightKindNames[k]
	}
	return "unknown"
}

// flightRec is one ring slot; all fields atomic for the same reason as
// traceRec — the ring wraps, and a snapshot mid-overwrite must read torn
// slots as droppable, not as races.
type flightRec struct {
	gen      atomic.Uint64 // claim ticket; re-checked by snapshot
	ns       atomic.Int64
	kind     atomic.Uint32
	activity atomic.Uint64
	seq      atomic.Uint32
	arg      atomic.Int64
}

// burstWindow is a lock-free fixed-window event counter for the dump
// triggers: hit() reports true exactly when an event crosses the threshold
// within the current window, so each burst dumps once.
type burstWindow struct {
	startNs atomic.Int64
	count   atomic.Int64
}

func (w *burstWindow) hit(windowNs, threshold int64) bool {
	now := traceNow()
	st := w.startNs.Load()
	if now-st > windowNs {
		if w.startNs.CompareAndSwap(st, now) {
			w.count.Store(0)
		}
	}
	return w.count.Add(1) == threshold
}

// flightRecorder is the per-Conn recorder state, embedded (never allocated)
// in Conn.
type flightRecorder struct {
	next        atomic.Uint64
	dumps       atomic.Int64
	last        atomic.Pointer[FlightDump]
	overloadWin burstWindow
	retransWin  burstWindow
	ring        [flightRingSize]flightRec
}

// record appends one event: atomic stores into the next slot, no
// allocation. Concurrent recorders may interleave within a slot; the
// snapshot's generation re-check drops such slots.
func (f *flightRecorder) record(kind FlightKind, activity uint64, seq uint32, arg int64) {
	i := f.next.Add(1)
	r := &f.ring[(i-1)%flightRingSize]
	r.gen.Store(i)
	r.ns.Store(traceNow())
	r.kind.Store(uint32(kind))
	r.activity.Store(activity)
	r.seq.Store(seq)
	r.arg.Store(arg)
}

// FlightEvent is one exported recorder event; Ns counts from the same
// process-wide origin as trace records, so flight events and trace spans
// align on one timeline.
type FlightEvent struct {
	Ns       int64  `json:"ns"`
	Kind     string `json:"kind"`
	Activity uint64 `json:"activity"`
	Seq      uint32 `json:"seq"`
	Arg      int64  `json:"arg,omitempty"`
}

// FlightDump is one auto-dumped ring snapshot.
type FlightDump struct {
	At      time.Time     `json:"at"`
	Trigger string        `json:"trigger"`
	Events  []FlightEvent `json:"events"`
}

// snapshot reads the ring oldest-first, dropping slots overwritten
// mid-read.
func (f *flightRecorder) snapshot() []FlightEvent {
	n := f.next.Load()
	count := n
	if count > flightRingSize {
		count = flightRingSize
	}
	start := uint64(0)
	if n > flightRingSize {
		start = n % flightRingSize
	}
	out := make([]FlightEvent, 0, count)
	for i := uint64(0); i < count; i++ {
		r := &f.ring[(start+i)%flightRingSize]
		gen := r.gen.Load()
		if gen == 0 {
			continue
		}
		ev := FlightEvent{
			Ns:       r.ns.Load(),
			Kind:     FlightKind(r.kind.Load()).String(),
			Activity: r.activity.Load(),
			Seq:      r.seq.Load(),
			Arg:      r.arg.Load(),
		}
		if r.gen.Load() != gen {
			continue // overwritten mid-read
		}
		out = append(out, ev)
	}
	return out
}

// flightDump snapshots the ring into an immutable dump — the one step that
// allocates, taken only on trigger conditions (paths already failing).
func (c *Conn) flightDump(trigger string) {
	d := &FlightDump{At: time.Now(), Trigger: trigger, Events: c.flight.snapshot()}
	c.flight.last.Store(d)
	c.flight.dumps.Add(1)
}

// FlightEvents returns the live ring's current contents, oldest first.
func (c *Conn) FlightEvents() []FlightEvent { return c.flight.snapshot() }

// LastFlightDump returns the most recent auto-dump (nil when no trigger
// has fired) and the total number of dumps taken.
func (c *Conn) LastFlightDump() (*FlightDump, int64) {
	return c.flight.last.Load(), c.flight.dumps.Load()
}

// noteRetransmit records one retransmission (and its RTO doubling, when it
// happened) and fires the storm trigger when the window threshold crosses.
func (c *Conn) noteRetransmit(k callKey, retries int, intervalNs int64, doubled bool) {
	c.flight.record(FlightRetransmit, k.activity, k.seq, int64(retries))
	if doubled {
		c.flight.record(FlightRTOBackoff, k.activity, k.seq, intervalNs)
	}
	if c.flight.retransWin.hit(flightRetransWindow, flightRetransStorm) {
		c.flightDump("retransmit-storm")
	}
}

// noteOverloadRecv records one overload rejection and fires the burst
// trigger when the window threshold crosses.
func (c *Conn) noteOverloadRecv(activity uint64, seq uint32) {
	c.flight.record(FlightOverload, activity, seq, 0)
	if c.flight.overloadWin.hit(flightOverloadWindow, flightOverloadBurst) {
		c.flightDump("overload-burst")
	}
}

// noteTimeout records a call timeout and always dumps: a deadline miss is
// rare enough, and valuable enough, that every one preserves its lead-up.
func (c *Conn) noteTimeout(k callKey, retries int) {
	c.flight.record(FlightTimeout, k.activity, k.seq, int64(retries))
	c.flightDump("call-timeout")
}
