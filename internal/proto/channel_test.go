package proto

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// waitGoroutines polls until the process goroutine count drops back to at
// most base+slack, failing the test otherwise. Go ships no goroutine-leak
// detector in the standard library, so the check is count-based: the
// protocol's per-call paths must not leave pumps, timers, or waiters
// behind.
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, started with %d (slack %d)\n%s", n, base, slack, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitCondition polls until cond returns nil, failing with its last error
// after the deadline.
func waitCondition(t *testing.T, d time.Duration, cond func() error) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		err := cond()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLossyAsyncStressNoLeaks floods a lossy, duplicating link with
// asynchronous fan-out calls from many goroutines — some of them abandoned
// mid-flight via context cancellation — and asserts that every awaited
// call completes successfully and that nothing leaks: no call-table
// entries, no pooled frames (once retained results are released by Close),
// and no goroutines. The impairment is a seeded faultnet profile with
// ~30% round-trip loss, wrapped around the caller's port.
func TestLossyAsyncStressNoLeaks(t *testing.T) {
	baseGo := runtime.NumGoroutine()
	ex := transport.NewExchange()
	cfg := Config{RetransInterval: 10 * time.Millisecond, MaxRetries: 25, Workers: 8}
	server := NewConn(ex.Port("server"), cfg, echoHandler)
	prof := faultnet.Profile{
		Name: "stress",
		Out:  faultnet.Impair{Drop: 0.15, Dup: 0.08},
		In:   faultnet.Impair{Drop: 0.15, Dup: 0.08},
	}
	caller := NewConn(faultnet.Wrap(ex.Port("caller"), prof, 7), cfg, nil)
	sa := transport.AddrOf("server")

	const goroutines = 6
	const fanout = 4
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	big := bytes.Repeat([]byte("lossy"), 1200) // ~6 KB: fragmented calls too
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// One activity per outstanding call: the protocol allows a
			// single in-flight call per activity.
			acts := make([]uint64, fanout)
			for i := range acts {
				acts[i] = caller.NewActivity()
			}
			for r := 1; r <= rounds; r++ {
				pending := make([]*Pending, fanout)
				for i := 0; i < fanout; i++ {
					args := []byte{byte(g), byte(i), byte(r)}
					if (g+i+r)%11 == 0 {
						args = big
					}
					p, err := caller.Go(context.Background(), sa, acts[i], uint32(r), 1, 1, args, nil)
					if err != nil {
						errs <- fmt.Errorf("g%d r%d i%d: Go: %w", g, r, i, err)
						return
					}
					pending[i] = p
				}
				for i, p := range pending {
					if (g+i+r)%13 == 0 {
						// Abandon this call mid-flight: cancellation must
						// recycle the call slot and frames exactly like
						// completion. The result may legitimately have
						// already arrived, so any outcome is acceptable.
						cctx, cancel := context.WithCancel(context.Background())
						cancel()
						p.Await(cctx)
						continue
					}
					res, err := p.Await(context.Background())
					if err != nil {
						errs <- fmt.Errorf("g%d r%d i%d: Await: %w", g, r, i, err)
						return
					}
					if len(res) == 0 || res[len(res)-1] != 0xEE {
						errs <- fmt.Errorf("g%d r%d i%d: bad echo (%d bytes)", g, r, i, len(res))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if n := caller.outstandingCalls(); n != 0 {
		t.Fatalf("caller leaked %d call-table entries", n)
	}
	if n := caller.frames.InUse(); n != 0 {
		t.Fatalf("caller leaked %d pooled frames", n)
	}
	// The server legitimately retains one result frame per activity for
	// retransmission; Close releases them all.
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	if n := server.frames.InUse(); n != 0 {
		t.Fatalf("server leaked %d pooled frames after Close", n)
	}
	if err := caller.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseGo, 2)
}

// TestCallTimeoutBeatsRetryBudget pins down the deadline semantics: a
// server that answers every retransmission with "still executing" resets
// the retry budget forever, but Config.CallTimeout still bounds the call.
func TestCallTimeoutBeatsRetryBudget(t *testing.T) {
	ex := transport.NewExchange()
	release := make(chan struct{})
	cfg := Config{
		RetransInterval: 10 * time.Millisecond,
		MaxRetries:      3,
		Workers:         2,
		CallTimeout:     150 * time.Millisecond,
	}
	caller, server, sa := pair(t, ex, cfg,
		func(transport.Addr, uint32, uint16, []byte) ([]byte, error) {
			<-release
			return []byte("late"), nil
		})
	defer close(release)
	start := time.Now()
	_, err := caller.Call(sa, caller.NewActivity(), 1, 1, 1, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed < cfg.CallTimeout {
		t.Fatalf("returned after %v, before the %v deadline", elapsed, cfg.CallTimeout)
	}
	if elapsed > 10*cfg.CallTimeout {
		t.Fatalf("returned after %v, deadline %v not enforced promptly", elapsed, cfg.CallTimeout)
	}
	if server.Stats().InProgressAcks == 0 {
		t.Fatal("server sent no in-progress acks; the test did not exercise patience resets")
	}
}

// TestCtxDeadlineTightensCallTimeout checks that a context deadline earlier
// than Config.CallTimeout wins.
func TestCtxDeadlineTightensCallTimeout(t *testing.T) {
	ex := transport.NewExchange()
	cfg := Config{
		RetransInterval: 10 * time.Millisecond,
		MaxRetries:      100,
		Workers:         2,
		CallTimeout:     10 * time.Second,
	}
	caller := NewConn(ex.Port("caller"), cfg, nil)
	defer caller.Close()
	// No server attached: the call can never complete.
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := caller.CallCtx(ctx, transport.AddrOf("nobody"), caller.NewActivity(), 1, 1, 1, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call to nobody succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("ctx deadline not honored: returned after %v", elapsed)
	}
}

// TestCancelPreSend: a context cancelled before the call starts must fail
// fast without transmitting anything.
func TestCancelPreSend(t *testing.T) {
	ex := transport.NewExchange()
	caller, _, sa := pair(t, ex, fastCfg(), echoHandler)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := caller.CallCtx(ctx, sa, caller.NewActivity(), 1, 1, 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := caller.Stats().CallsSent; n != 0 {
		t.Fatalf("%d calls transmitted despite pre-send cancellation", n)
	}
	if n := caller.outstandingCalls(); n != 0 {
		t.Fatalf("%d call-table entries after pre-send cancellation", n)
	}
}

// TestCancelMidRetransmission cancels a call that is being retransmitted
// into the void and asserts it returns promptly with the context error,
// leaking neither call-table entries, nor heap slots, nor frames.
func TestCancelMidRetransmission(t *testing.T) {
	baseGo := runtime.NumGoroutine()
	ex := transport.NewExchange()
	cfg := Config{RetransInterval: 15 * time.Millisecond, MaxRetries: 1000, Workers: 2}
	caller := NewConn(ex.Port("caller"), cfg, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(60 * time.Millisecond) // a few retransmissions deep
		cancel()
	}()
	start := time.Now()
	_, err := caller.CallCtx(ctx, transport.AddrOf("nobody"), caller.NewActivity(), 1, 1, 1, []byte("x"))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if caller.Stats().Retransmits == 0 {
		t.Fatal("call was not retransmitted before cancellation; test is not mid-retransmission")
	}
	if n := caller.outstandingCalls(); n != 0 {
		t.Fatalf("%d call-table entries leaked", n)
	}
	if n := caller.frames.InUse(); n != 0 {
		t.Fatalf("%d pooled frames leaked", n)
	}
	caller.retransMu.Lock()
	heapLen := len(caller.rheap)
	caller.retransMu.Unlock()
	if heapLen != 0 {
		t.Fatalf("%d entries left in the retransmission heap", heapLen)
	}
	if err := caller.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseGo, 2)
}

// TestCancelMidExecution cancels while the server handler is running: the
// caller returns immediately, the server observes the abandonment through
// the cancel packet, and the eventual result is neither sent nor retained.
func TestCancelMidExecution(t *testing.T) {
	ex := transport.NewExchange()
	entered := make(chan struct{})
	release := make(chan struct{})
	cfg := Config{RetransInterval: 10 * time.Millisecond, MaxRetries: 100, Workers: 2}
	caller, server, sa := pair(t, ex, cfg,
		func(transport.Addr, uint32, uint16, []byte) ([]byte, error) {
			close(entered)
			<-release
			return []byte("nobody wants this"), nil
		})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-entered
		cancel()
	}()
	_, err := caller.CallCtx(ctx, sa, caller.NewActivity(), 1, 1, 1, []byte("work"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitCondition(t, 2*time.Second, func() error {
		if server.Stats().Cancels == 0 {
			return errors.New("server never observed the cancel notice")
		}
		return nil
	})
	close(release) // let the handler finish into the void
	// The abandoned result must not be retained: once the handler returns,
	// the server's frame pool drains back to zero without a Close.
	waitCondition(t, 2*time.Second, func() error {
		if n := server.frames.InUse(); n != 0 {
			return fmt.Errorf("server retains %d frames for an abandoned call", n)
		}
		return nil
	})
	if n := caller.outstandingCalls(); n != 0 {
		t.Fatalf("%d caller call-table entries leaked", n)
	}
}

// TestCancelMidReassembly delivers only the first fragment of a two-packet
// call, then the caller's cancel notice: the server must drop the partial
// reassembly state rather than waiting forever for the rest.
func TestCancelMidReassembly(t *testing.T) {
	ex := transport.NewExchange()
	_, server, _ := pair(t, ex, fastCfg(), echoHandler)

	const activity, seq = 424242, 7
	frag0 := buildFrame(wire.RPCHeader{
		Type: wire.TypeCall, Activity: activity, Seq: seq,
		FragIndex: 0, FragCount: 2, Interface: 1, Proc: 1,
		Flags: wire.FlagPleaseAck,
	}, []byte("first half"))
	if err := ex.SendFrom("caller", "server", frag0); err != nil {
		t.Fatal(err)
	}
	srcAddr := transport.AddrOf("caller")
	waitCondition(t, 2*time.Second, func() error {
		ch := server.lookupChannel(srcAddr)
		if ch == nil {
			return errors.New("server has no channel for the caller yet")
		}
		ch.actsMu.Lock()
		defer ch.actsMu.Unlock()
		act := ch.acts[activity]
		if act == nil || act.frags == nil {
			return errors.New("no reassembly state yet")
		}
		return nil
	})

	cancelFrame := buildFrame(wire.RPCHeader{
		Type: wire.TypeCancel, Activity: activity, Seq: seq, FragCount: 1,
	}, nil)
	if err := ex.SendFrom("caller", "server", cancelFrame); err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 2*time.Second, func() error {
		if server.Stats().Cancels == 0 {
			return errors.New("cancel not observed")
		}
		ch := server.lookupChannel(srcAddr)
		ch.actsMu.Lock()
		defer ch.actsMu.Unlock()
		act := ch.acts[activity]
		if act == nil {
			return errors.New("activity vanished")
		}
		if act.frags != nil {
			return errors.New("partial reassembly state still held")
		}
		if !act.abandoned {
			return errors.New("activity not marked abandoned")
		}
		return nil
	})
}

// TestIdlePeerEviction checks that a quiet peer's channel — call table,
// duplicate state, retained result frames, RTT estimate — is reclaimed by
// the sweeper, and that traffic resurrects the peer transparently.
func TestIdlePeerEviction(t *testing.T) {
	ex := transport.NewExchange()
	cfg := Config{
		RetransInterval: 10 * time.Millisecond,
		MaxRetries:      8,
		Workers:         2,
		PeerIdleTimeout: 80 * time.Millisecond,
	}
	caller, server, sa := pair(t, ex, cfg, echoHandler)
	act := caller.NewActivity()
	for seq := uint32(1); seq <= 3; seq++ {
		if _, err := caller.Call(sa, act, seq, 1, 1, []byte("warm")); err != nil {
			t.Fatal(err)
		}
	}
	if server.numPeers() == 0 {
		t.Fatal("server tracked no peer after serving calls")
	}
	// The retained result frame must be released by eviction, without Close.
	waitCondition(t, 5*time.Second, func() error {
		if n := server.numPeers(); n != 0 {
			return fmt.Errorf("server still tracks %d peers", n)
		}
		if n := server.frames.InUse(); n != 0 {
			return fmt.Errorf("server still holds %d frames", n)
		}
		return nil
	})
	if server.Stats().PeersEvicted == 0 {
		t.Fatal("eviction counter did not move")
	}
	// The peer comes back on the next call.
	if _, err := caller.Call(sa, act, 10, 1, 1, []byte("again")); err != nil {
		t.Fatalf("call after eviction: %v", err)
	}
}

// TestAsyncFanOutOneGoroutine drives 64 concurrent calls from a single
// goroutine through the async API — the engine, not goroutines, carries
// the in-flight state — and checks goroutine count stays flat.
func TestAsyncFanOutOneGoroutine(t *testing.T) {
	ex := transport.NewExchange()
	release := make(chan struct{})
	cfg := Config{RetransInterval: 50 * time.Millisecond, MaxRetries: 8, Workers: 4}
	caller, _, sa := pair(t, ex, cfg,
		func(_ transport.Addr, _ uint32, _ uint16, args []byte) ([]byte, error) {
			<-release
			return append([]byte(nil), args...), nil
		})
	const fanout = 64
	before := runtime.NumGoroutine()
	pendings := make([]*Pending, fanout)
	for i := range pendings {
		p, err := caller.Go(context.Background(), sa, caller.NewActivity(), 1, 1, 1, []byte{byte(i)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		pendings[i] = p
	}
	during := runtime.NumGoroutine()
	// 64 single-packet calls in flight must not cost 64 goroutines. The
	// server side holds workers (capped at cfg.Workers), so allow a small
	// constant, not O(fanout).
	if during-before > 10 {
		t.Fatalf("goroutines grew by %d with %d calls in flight", during-before, fanout)
	}
	close(release)
	for i, p := range pendings {
		res, err := p.Await(context.Background())
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(res) != 1 || res[0] != byte(i) {
			t.Fatalf("call %d: bad result %v", i, res)
		}
	}
	if n := caller.outstandingCalls(); n != 0 {
		t.Fatalf("%d call-table entries leaked", n)
	}
}
