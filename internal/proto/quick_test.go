package proto

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/transport"
)

// Property: any payload round-trips through Call intact, for arbitrary
// sizes from empty to several fragments, even with loss and duplication.
func TestQuickRoundTripUnderFaults(t *testing.T) {
	ex := transport.NewExchange()
	prof := faultnet.Profile{
		Out: faultnet.Impair{Drop: 0.1, Dup: 0.15},
		In:  faultnet.Impair{Drop: 0.1, Dup: 0.15},
	}
	cfg := Config{RetransInterval: 10 * time.Millisecond, MaxRetries: 12, Workers: 4}
	caller := NewConn(faultnet.Wrap(ex.Port("caller"), prof, 3), cfg, nil)
	server := NewConn(ex.Port("server"), cfg, echoHandler)
	defer caller.Close()
	defer server.Close()
	sa := transport.AddrOf("server")

	act := caller.NewActivity()
	seq := uint32(0)
	f := func(size uint16, fill byte) bool {
		seq++
		n := int(size) % 4000
		msg := bytes.Repeat([]byte{fill}, n)
		res, err := caller.Call(sa, act, seq, 1, 1, msg)
		if err != nil {
			t.Logf("seq %d (n=%d): %v", seq, n, err)
			return false
		}
		return len(res) == n+1 && bytes.Equal(res[:n], msg) && res[n] == 0xEE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: sequence numbers from the same activity never execute twice,
// no matter how the transport duplicates frames.
func TestQuickExactlyOnceUnderDuplication(t *testing.T) {
	ex := transport.NewExchange()
	// Duplicate every frame in both directions.
	prof := faultnet.Profile{
		Out: faultnet.Impair{Dup: 1},
		In:  faultnet.Impair{Dup: 1},
	}
	executed := make(map[uint32]int)
	cfg := fastCfg()
	caller := NewConn(faultnet.Wrap(ex.Port("caller"), prof, 4), cfg, nil)
	server := NewConn(ex.Port("server"), cfg,
		func(_ transport.Addr, _ uint32, _ uint16, args []byte) ([]byte, error) {
			seq := uint32(args[0])<<8 | uint32(args[1])
			executed[seq]++
			return args, nil
		})
	defer caller.Close()
	defer server.Close()
	sa := transport.AddrOf("server")
	act := caller.NewActivity()
	for seq := uint32(1); seq <= 40; seq++ {
		args := []byte{byte(seq >> 8), byte(seq)}
		if _, err := caller.Call(sa, act, seq, 1, 1, args); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
	}
	// executed is written only from the single-worker... workers=4; but map
	// access races are prevented because duplicates of the SAME call are
	// suppressed before the handler, and calls of one activity are serial.
	for seq, n := range executed {
		if n != 1 {
			t.Errorf("seq %d executed %d times", seq, n)
		}
	}
	if len(executed) != 40 {
		t.Errorf("%d distinct calls executed, want 40", len(executed))
	}
}

// Property: interleaved activities with interleaved sequence numbers all
// complete with the right results.
func TestQuickManyActivities(t *testing.T) {
	ex := transport.NewExchange()
	cfg := fastCfg()
	caller := NewConn(ex.Port("caller"), cfg, nil)
	server := NewConn(ex.Port("server"), cfg, echoHandler)
	defer caller.Close()
	defer server.Close()
	sa := transport.AddrOf("server")

	type step struct {
		Act byte
		Msg byte
	}
	acts := map[byte]uint64{}
	seqs := map[byte]uint32{}
	f := func(s step) bool {
		id, ok := acts[s.Act]
		if !ok {
			id = caller.NewActivity()
			acts[s.Act] = id
		}
		seqs[s.Act]++
		res, err := caller.Call(sa, id, seqs[s.Act], 1, 1, []byte{s.Msg})
		return err == nil && len(res) == 2 && res[0] == s.Msg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveRTTConverges(t *testing.T) {
	ex := transport.NewExchange()
	cfg := Config{RetransInterval: 200 * time.Millisecond, MaxRetries: 5, Workers: 2}
	caller := NewConn(ex.Port("caller"), cfg, nil)
	server := NewConn(ex.Port("server"), cfg, echoHandler)
	defer caller.Close()
	defer server.Close()
	sa := transport.AddrOf("server")

	if _, ok := caller.RTT(sa); ok {
		t.Fatal("estimate exists before any call")
	}
	act := caller.NewActivity()
	for seq := uint32(1); seq <= 10; seq++ {
		if _, err := caller.Call(sa, act, seq, 1, 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	srtt, ok := caller.RTT(sa)
	if !ok {
		t.Fatal("no RTT estimate after successful calls")
	}
	// In-process exchange round trips are well under a millisecond; the
	// smoothed estimate must be far below the configured 200 ms interval.
	if srtt <= 0 || srtt > 50*time.Millisecond {
		t.Fatalf("srtt = %v, want sub-50ms", srtt)
	}
	// The adaptive initial retransmission interval is below the ceiling but
	// at least the floor.
	iv := caller.channelOf(sa).rttInterval(cfg.RetransInterval/8, cfg.RetransInterval)
	if iv >= cfg.RetransInterval {
		t.Fatalf("adaptive interval %v did not drop below the ceiling %v", iv, cfg.RetransInterval)
	}
	if iv < cfg.RetransInterval/8 {
		t.Fatalf("adaptive interval %v under the floor", iv)
	}
}

func TestAdaptiveRTTSpeedsRecovery(t *testing.T) {
	// With a warm RTT estimate, a single lost call recovers in much less
	// than the configured (deliberately huge) interval.
	ex := transport.NewExchange()
	cfg := Config{RetransInterval: 2 * time.Second, MaxRetries: 8, Workers: 2}
	ft := faultnet.Wrap(ex.Port("caller"), faultnet.Profile{}, 5)
	caller := NewConn(ft, cfg, nil)
	server := NewConn(ex.Port("server"), cfg, echoHandler)
	defer caller.Close()
	defer server.Close()
	sa := transport.AddrOf("server")
	act := caller.NewActivity()
	for seq := uint32(1); seq <= 5; seq++ {
		if _, err := caller.Call(sa, act, seq, 1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Lose every frame briefly, then heal.
	ft.Impairer().SetProfile(faultnet.Loss(1))
	go func() {
		time.Sleep(20 * time.Millisecond)
		ft.Impairer().SetProfile(faultnet.Profile{})
	}()
	start := time.Now()
	if _, err := caller.Call(sa, act, 6, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("recovery took %v; adaptive retransmission should beat the 2s ceiling", elapsed)
	}
	if caller.Stats().Retransmits == 0 {
		t.Fatal("no retransmission occurred")
	}
}
