package proto

import (
	"time"

	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// Call performs one remote procedure call: it transmits args to dst as one
// or more fragments, waits for the result, and drives retransmission. It
// blocks the calling goroutine, exactly as a caller thread blocks in the
// call table. seq must increase across calls of the same activity.
func (c *Conn) Call(dst transport.Addr, activity uint64, seq uint32,
	iface uint32, proc uint16, args []byte) ([]byte, error) {

	frags := fragment(args, c.maxPayload())
	if len(frags) > maxFragments {
		return nil, ErrTooLarge
	}

	oc := &outCall{
		key:      callKey{activity, seq},
		dst:      dst,
		ackCh:    make(chan uint16, maxFragments),
		progress: make(chan struct{}, 1),
		done:     make(chan struct{}),
		resFrags: make(map[uint16][]byte),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.calls[oc.key] = oc
	c.mu.Unlock()
	c.count(func(s *Stats) { s.CallsSent++ })
	defer func() {
		c.mu.Lock()
		delete(c.calls, oc.key)
		c.mu.Unlock()
	}()

	hdr := wire.RPCHeader{
		Type:      wire.TypeCall,
		Activity:  activity,
		Seq:       seq,
		FragCount: uint16(len(frags)),
		Interface: iface,
		Proc:      proc,
	}

	// Stop-and-wait for all but the final fragment.
	for i := 0; i < len(frags)-1; i++ {
		h := hdr
		h.FragIndex = uint16(i)
		h.Flags = wire.FlagPleaseAck
		if err := c.sendFragWithAck(oc, buildFrame(h, frags[i]), uint16(i)); err != nil {
			return nil, err
		}
	}

	// Final fragment: acknowledged implicitly by the result.
	last := hdr
	last.FragIndex = uint16(len(frags) - 1)
	last.Flags = wire.FlagLastFrag
	frame := buildFrame(last, frags[len(frags)-1])
	started := time.Now()
	if err := c.tr.Send(dst, frame); err != nil {
		return nil, err
	}

	// Start from the adaptive per-peer estimate (Jacobson-style), with the
	// configured interval as both the ceiling and the cold-start value.
	interval := c.rtt.interval(dst, c.cfg.RetransInterval/8, c.cfg.RetransInterval)
	retries := 0
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-oc.done:
			oc.mu.Lock()
			res, err := oc.result, oc.err
			oc.mu.Unlock()
			if err == nil {
				c.count(func(s *Stats) { s.CallsCompleted++ })
				if retries == 0 {
					// Karn's rule: only un-retransmitted calls feed the
					// round-trip estimator.
					c.rtt.observe(dst, time.Since(started))
				}
			}
			return res, err
		case <-oc.progress:
			// Server says it is still executing: reset patience.
			retries = 0
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(interval)
		case <-timer.C:
			retries++
			if retries > c.cfg.MaxRetries {
				return nil, ErrTimeout
			}
			c.count(func(s *Stats) { s.Retransmits++ })
			// Retransmissions request an explicit acknowledgement so a
			// busy server can answer without completing.
			re := last
			re.Flags |= wire.FlagPleaseAck
			if err := c.tr.Send(dst, buildFrame(re, frags[len(frags)-1])); err != nil {
				return nil, err
			}
			if interval < 8*c.cfg.RetransInterval {
				interval *= 2
			}
			timer.Reset(interval)
		}
	}
}

// sendFragWithAck transmits one non-final fragment and waits for its
// explicit acknowledgement, retransmitting as needed.
func (c *Conn) sendFragWithAck(oc *outCall, frame []byte, idx uint16) error {
	if err := c.tr.Send(oc.dst, frame); err != nil {
		return err
	}
	interval := c.cfg.RetransInterval
	retries := 0
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-oc.done: // rejected or canceled mid-stream
			oc.mu.Lock()
			err := oc.err
			oc.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return err
		case got := <-oc.ackCh:
			if got == idx {
				return nil
			}
			// Stale ack of an earlier fragment: keep waiting.
		case <-timer.C:
			retries++
			if retries > c.cfg.MaxRetries {
				return ErrTimeout
			}
			c.count(func(s *Stats) { s.Retransmits++ })
			if err := c.tr.Send(oc.dst, frame); err != nil {
				return err
			}
			if interval < 8*c.cfg.RetransInterval {
				interval *= 2
			}
			timer.Reset(interval)
		}
	}
}

// Ping probes a peer's liveness.
func (c *Conn) Ping(dst transport.Addr, timeout time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.pingSeq++
	seq := c.pingSeq
	ch := make(chan struct{})
	c.pings[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pings, seq)
		c.mu.Unlock()
	}()

	h := wire.RPCHeader{Type: wire.TypeProbe, Seq: seq, FragCount: 1}
	deadline := time.Now().Add(timeout)
	interval := c.cfg.RetransInterval
	for {
		if err := c.tr.Send(dst, buildFrame(h, nil)); err != nil {
			return err
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return ErrTimeout
		}
		wait := interval
		if wait > remain {
			wait = remain
		}
		select {
		case <-ch:
			return nil
		case <-time.After(wait):
			if time.Now().After(deadline) {
				return ErrTimeout
			}
		}
	}
}
