package proto

import (
	"context"
	"time"

	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// armTimer readies the call's reusable retransmission timer. The timer is
// pooled with the outCall so the fragment stop-and-wait path never
// allocates runtime timers.
func (oc *outCall) armTimer(d time.Duration) *time.Timer {
	if oc.timer == nil {
		oc.timer = time.NewTimer(d)
	} else {
		oc.timer.Reset(d)
	}
	return oc.timer
}

// quiesceTimer stops the reusable timer and drains a pending fire so the
// next armTimer starts clean.
func (oc *outCall) quiesceTimer() {
	if oc.timer != nil && !oc.timer.Stop() {
		select {
		case <-oc.timer.C:
		default:
		}
	}
}

// Pending is the handle to one in-flight asynchronous call started with Go
// or StartCall. Exactly one goroutine must eventually call Await, which
// collects the result and recycles the call's pooled state; after Await
// returns, the handle is inert (further Awaits return the cached outcome)
// and Done's channel must not be reused for a new call.
type Pending struct {
	c      *Conn
	ch     *channel
	oc     *outCall
	k      callKey
	doneCh <-chan struct{}
	pump   chan struct{} // non-nil for multi-fragment calls; closed when the send pump exits
	res    []byte
	err    error
}

// Done returns a channel that is closed when the call has completed
// (result, rejection, timeout, or connection close). It lets a fan-out
// caller select across many pending calls; collect the outcome with Await.
func (p *Pending) Done() <-chan struct{} { return p.doneCh }

// Await blocks until the call completes or ctx is cancelled, then returns
// the result and releases every per-call resource: the call-table entry,
// the retained retransmission frame, the engine's timer slot, and the
// pooled outCall. On cancellation the call fails with ctx.Err() and a
// best-effort cancel packet tells the server the caller has abandoned it.
func (p *Pending) Await(ctx context.Context) ([]byte, error) {
	if p.oc == nil {
		return p.res, p.err
	}
	oc, k, c := p.oc, p.k, p.c
	if cd := ctx.Done(); cd == nil {
		// Non-cancellable context (the blocking wrappers' common case): a
		// plain receive skips selectgo on the fast path.
		<-oc.done
	} else {
		select {
		case <-oc.done:
		case <-cd:
			p.cancelNotify(ctx.Err())
			<-oc.done
		}
	}
	// A multi-fragment send pump may still hold the args slice and the
	// reusable timer; join it before recycling anything.
	if p.pump != nil {
		<-p.pump
	}
	c.unscheduleRetrans(oc, k)
	p.ch.callsMu.Lock()
	if p.ch.calls[k] == oc {
		delete(p.ch.calls, k)
	}
	p.ch.callsMu.Unlock()
	oc.mu.Lock()
	res, err := oc.result, oc.err
	frame := oc.frame
	oc.frame = nil
	retries := oc.retries
	sentAt := oc.sentAt
	iface, proc := oc.iface, oc.proc
	rec := oc.trace
	oc.trace = nil
	oc.mu.Unlock()
	if rec != nil {
		rec.stamp(StageWakeup)
	}
	if frame != nil {
		frame.Release()
	}
	if err == nil {
		c.stats.callsCompleted.Add(1)
		if !sentAt.IsZero() {
			elapsed := time.Since(sentAt)
			if retries == 0 {
				// Karn's rule: only un-retransmitted calls feed the per-peer
				// round-trip estimator.
				p.ch.rttObserve(elapsed)
			}
			if c.trace.sampleN.Load() != 0 {
				// Observability on: fold the call into the per-peer and
				// per-method latency histograms.
				c.observeLatency(p.ch, iface, proc, elapsed)
			}
		}
	}
	oc.quiesceTimer()
	putOutCall(oc)
	p.oc = nil
	p.res, p.err = res, err
	return res, err
}

// cancelNotify fails the call with cause and tells the server — best
// effort, one unacknowledged packet — that the caller has abandoned it, so
// the server can drop reassembly state and skip retaining the result.
func (p *Pending) cancelNotify(cause error) {
	oc, k := p.oc, p.k
	oc.mu.Lock()
	already := oc.finished
	if !already {
		oc.finishLocked(k, nil, cause)
	}
	oc.mu.Unlock()
	if already {
		return
	}
	p.c.flight.record(FlightCancelSent, k.activity, k.seq, 0)
	if p.ch.features()&wire.FeatCancel == 0 {
		// The negotiated session says the peer does not understand cancel
		// packets; the local call still fails immediately, the server just
		// wastes one execution (exactly the lost-cancel outcome).
		return
	}
	h := wire.RPCHeader{Type: wire.TypeCancel, Activity: k.activity, Seq: k.seq, FragCount: 1}
	_ = p.c.sendFrame(p.ch.peer, h, nil)
}

// Go starts an asynchronous call and returns its handle. It transmits args
// to dst (spawning a goroutine only for multi-fragment sends), registers
// the call with the retransmission engine, and returns immediately; the
// result is collected with Await. seq must increase across calls of the
// same activity, and an activity may have at most one call in flight —
// fan-out callers use one activity per outstanding call (as core.Client's
// slots do).
func (c *Conn) Go(ctx context.Context, dst transport.Addr, activity uint64, seq uint32,
	iface uint32, proc uint16, args []byte, resBuf []byte) (*Pending, error) {
	p := new(Pending)
	if err := c.StartCall(ctx, dst, activity, seq, iface, proc, args, resBuf, p); err != nil {
		return nil, err
	}
	return p, nil
}

// StartCall is Go with a caller-provided Pending, so callers that pool
// their per-call state (core.Client's slots, the blocking wrappers' stack
// frame) start a call without allocating the handle.
func (c *Conn) StartCall(ctx context.Context, dst transport.Addr, activity uint64, seq uint32,
	iface uint32, proc uint16, args []byte, resBuf []byte, p *Pending) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err // cancelled before sending anything
	}

	ch := c.channelOf(dst)
	// First contact kicks off session negotiation without waiting: the call
	// proceeds under the legacy-implied capability set until the peer's
	// hello-ack lands. Once the channel leaves the unknown state this is a
	// single atomic load.
	c.ensureSession(ch)

	// Sampled stage tracing plus distributed trace context. One atomic load
	// when tracing is disabled (rec stays nil and the context is never
	// consulted). With tracing on, a call carrying a sampled parent context
	// is always traced — claimFlagged bypasses the local sampler — so every
	// hop of a chained call joins the tree; its span parents onto the
	// caller's ambient span and inherits the trace id.
	rec, traceOn := c.trace.sample()
	var tc wire.TraceCtx
	var parentSpan uint64
	if traceOn {
		if ptc, ok := TraceContextFrom(ctx); ok && ptc.Sampled() {
			if rec == nil {
				rec = c.trace.claimFlagged()
			}
			tc.TraceID = ptc.TraceID
			parentSpan = ptc.SpanID
		}
		if rec != nil {
			if tc.TraceID == 0 {
				tc.TraceID = c.newSpanID()
			}
			tc.SpanID = c.newSpanID()
			tc.Flags = wire.TraceFlagSampled
		}
	}
	// The context rides the wire only on sessions that negotiated FeatTrace
	// (a v0 peer would misparse the prefix as arguments; it gets the legacy
	// FlagTraced bit instead). The prefix is part of the message stream, so
	// fragmentation reserves its bytes in fragment 0's budget.
	inlineTC := rec != nil && ch.features()&wire.FeatTrace != 0
	extra := 0
	if inlineTC {
		extra = wire.TraceCtxLen
	}

	// Single-packet calls — the fast path — skip the fragmentation helper
	// and its slice allocation entirely.
	maxP := c.maxPayload()
	nfrags := 1
	var frags [][]byte
	if len(args)+extra > maxP {
		if extra > 0 {
			frags = append(frags, args[:maxP-extra])
			frags = append(frags, fragment(args[maxP-extra:], maxP)...)
		} else {
			frags = fragment(args, maxP)
		}
		if len(frags) > maxFragments {
			return ErrTooLarge
		}
		nfrags = len(frags)
	}

	// The call's absolute deadline: the earlier of Config.CallTimeout and
	// the context's deadline. The retransmission engine enforces it, so it
	// holds even while retransmissions keep being answered.
	var deadline time.Time
	if c.cfg.CallTimeout > 0 {
		deadline = time.Now().Add(c.cfg.CallTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	k := callKey{activity, seq}
	oc := getOutCall(k, dst, resBuf)
	oc.mu.Lock()
	oc.deadline = deadline
	oc.iface, oc.proc = iface, proc
	if rec != nil {
		rec.claim(activity, seq)
		rec.setSpan(tc.TraceID, tc.SpanID, parentSpan)
		rec.setMethod(iface, proc)
		rec.stamp(StageStart)
		oc.trace = rec
	}
	oc.mu.Unlock()
	ch.callsMu.Lock()
	ch.calls[k] = oc
	ch.callsMu.Unlock()
	if c.closed.Load() {
		// Close may already have swept this channel; do not strand the call.
		ch.callsMu.Lock()
		if ch.calls[k] == oc {
			delete(ch.calls, k)
		}
		ch.callsMu.Unlock()
		putOutCall(oc)
		return ErrClosed
	}
	now := time.Now()
	ch.touch(now)
	c.stats.callsSent.Add(1)
	*p = Pending{c: c, ch: ch, oc: oc, k: k, doneCh: oc.done}

	// Start retransmission from the adaptive per-peer estimate
	// (Jacobson-style), with the configured interval as both the ceiling
	// and the cold-start value.
	iv := ch.rttInterval(c.cfg.RetransInterval/8, c.cfg.RetransInterval)

	hdr := wire.RPCHeader{
		Type:      wire.TypeCall,
		Activity:  activity,
		Seq:       seq,
		FragCount: uint16(nfrags),
		Interface: iface,
		Proc:      proc,
	}
	if !deadline.IsZero() && ch.features()&wire.FeatBudget != 0 {
		// Advertise the remaining budget (ms, saturating) so a server under
		// admission control can shed this call if it cannot be served in
		// time. Retransmissions re-send the original stamp; the server
		// counts budget from each arrival, so a retried call looks slightly
		// richer than it is — conservative in the right direction (the shed
		// decision errs toward serving). Gated on the negotiated session:
		// a peer that did not advertise FeatBudget never sees the flag.
		ms := time.Until(deadline) / time.Millisecond
		if ms < 1 {
			ms = 1
		}
		if ms > 0xffff {
			ms = 0xffff
		}
		hdr.Hint = uint16(ms)
		hdr.Flags |= wire.FlagBudget
	}
	if inlineTC {
		// Every fragment advertises the prefix; its bytes ride in fragment 0.
		hdr.Flags |= wire.FlagTraceCtx
	}

	if nfrags == 1 {
		last := hdr
		last.Flags |= wire.FlagLastFrag
		var frame *buffer.Frame
		if inlineTC {
			frame = c.newFrameTC(last, tc, args)
		} else {
			if rec != nil {
				// Ask the server to stamp its stages for this call too —
				// the legacy path for peers without FeatTrace.
				last.Flags |= wire.FlagTraced
			}
			frame = c.newFrame(last, args)
		}
		sent := now
		if err := c.send(dst, frame.Bytes()); err != nil {
			frame.Release()
			ch.callsMu.Lock()
			if ch.calls[k] == oc {
				delete(ch.calls, k)
			}
			ch.callsMu.Unlock()
			putOutCall(oc)
			return err
		}
		if rec != nil {
			rec.stamp(StageSent)
		}
		c.armRetrans(oc, k, frame, sent, iv, deadline)
		return nil
	}

	// Multi-fragment calls hand the stop-and-wait send to a pump goroutine
	// so Go still returns immediately; the args slice stays referenced
	// until the pump exits, which Await waits for.
	pump := make(chan struct{})
	p.pump = pump
	var tcp *wire.TraceCtx
	if inlineTC {
		tcp = &tc
	}
	go c.pumpCall(oc, ch, k, hdr, frags, iv, deadline, pump, tcp)
	return nil
}

// armRetrans retains the final call fragment's frame and schedules the
// retransmission engine for it, clamping the first check to the deadline.
func (c *Conn) armRetrans(oc *outCall, k callKey, frame *buffer.Frame, sent time.Time, iv time.Duration, deadline time.Time) {
	oc.mu.Lock()
	if oc.finished || oc.key != k {
		oc.mu.Unlock()
		frame.Release()
		return
	}
	oc.frame = frame
	oc.sentAt = sent
	oc.interval = iv
	oc.nextAt = sent.Add(iv)
	at := oc.nextAt
	if !deadline.IsZero() && deadline.Before(at) {
		at = deadline
	}
	oc.mu.Unlock()
	c.scheduleRetrans(oc, k, at)
}

// pumpCall drives a multi-fragment call's stop-and-wait sends off the
// caller's goroutine, then arms the retransmission engine for the final
// fragment. It exits promptly if the call completes or is cancelled
// mid-stream (sendFragWithAck watches oc.done).
func (c *Conn) pumpCall(oc *outCall, ch *channel, k callKey, hdr wire.RPCHeader,
	frags [][]byte, iv time.Duration, deadline time.Time, pump chan struct{}, tcp *wire.TraceCtx) {
	defer close(pump)
	nfrags := len(frags)
	for i := 0; i < nfrags-1; i++ {
		h := hdr
		h.FragIndex = uint16(i)
		h.Flags |= wire.FlagPleaseAck
		var f *buffer.Frame
		if i == 0 && tcp != nil {
			// The trace-context prefix rides in fragment 0's bytes.
			f = c.newFrameTC(h, *tcp, frags[i])
		} else {
			f = c.newFrame(h, frags[i])
		}
		err := c.sendFragWithAck(oc, k, f, uint16(i), deadline)
		f.Release()
		if err != nil {
			oc.finish(k, nil, err)
			return
		}
	}
	last := hdr
	last.FragIndex = uint16(nfrags - 1)
	last.Flags |= wire.FlagLastFrag
	oc.mu.Lock()
	rec := oc.trace
	oc.mu.Unlock()
	if rec != nil && tcp == nil {
		last.Flags |= wire.FlagTraced
	}
	frame := c.newFrame(last, frags[nfrags-1])
	sent := time.Now()
	if err := c.send(ch.peer, frame.Bytes()); err != nil {
		frame.Release()
		oc.finish(k, nil, err)
		return
	}
	if rec != nil {
		rec.stamp(StageSent)
	}
	c.armRetrans(oc, k, frame, sent, iv, deadline)
}

// CallCtx performs one remote procedure call, blocking until the result
// arrives, ctx is cancelled, or the call's deadline expires.
func (c *Conn) CallCtx(ctx context.Context, dst transport.Addr, activity uint64, seq uint32,
	iface uint32, proc uint16, args []byte) ([]byte, error) {
	return c.CallBufCtx(ctx, dst, activity, seq, iface, proc, args, nil)
}

// Call is CallCtx without cancellation. seq must increase across calls of
// the same activity.
func (c *Conn) Call(dst transport.Addr, activity uint64, seq uint32,
	iface uint32, proc uint16, args []byte) ([]byte, error) {
	return c.CallBufCtx(context.Background(), dst, activity, seq, iface, proc, args, nil)
}

// CallBuf is Call with a caller-supplied result buffer: the result is
// appended to resBuf[:0] when capacity allows, so a caller thread that
// reuses one buffer across calls (as core.Client does) receives results
// without a per-call allocation. The returned slice aliases resBuf when it
// fits; callers that retain results across calls must copy them.
func (c *Conn) CallBuf(dst transport.Addr, activity uint64, seq uint32,
	iface uint32, proc uint16, args []byte, resBuf []byte) ([]byte, error) {
	return c.CallBufCtx(context.Background(), dst, activity, seq, iface, proc, args, resBuf)
}

// CallBufCtx is the blocking form of the async API: StartCall with a
// stack-allocated handle, then Await. All the blocking entry points funnel
// here, so the call table, retransmission engine, deadlines, and
// cancellation behave identically for sync and async callers.
func (c *Conn) CallBufCtx(ctx context.Context, dst transport.Addr, activity uint64, seq uint32,
	iface uint32, proc uint16, args []byte, resBuf []byte) ([]byte, error) {
	var p Pending
	if err := c.StartCall(ctx, dst, activity, seq, iface, proc, args, resBuf, &p); err != nil {
		return nil, err
	}
	return p.Await(ctx)
}

// sendFragWithAck transmits one non-final fragment and waits for its
// explicit acknowledgement, retransmitting as needed and honoring the
// call's absolute deadline.
func (c *Conn) sendFragWithAck(oc *outCall, k callKey, frame *buffer.Frame, idx uint16, deadline time.Time) error {
	if err := c.send(oc.dst, frame.Bytes()); err != nil {
		return err
	}
	interval := c.cfg.RetransInterval
	wait := func() (time.Duration, bool) {
		w := interval
		if !deadline.IsZero() {
			r := time.Until(deadline)
			if r <= 0 {
				return 0, false
			}
			if r < w {
				w = r
			}
		}
		return w, true
	}
	w, ok := wait()
	if !ok {
		return ErrTimeout
	}
	retries := 0
	timer := oc.armTimer(w)
	defer oc.quiesceTimer()
	for {
		select {
		case <-oc.done: // rejected or cancelled mid-stream
			oc.mu.Lock()
			err := oc.err
			oc.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return err
		case got := <-oc.ackCh:
			if got.activity == k.activity && got.seq == k.seq && got.idx == idx {
				return nil
			}
			// Stale ack of an earlier fragment or call: keep waiting.
		case <-timer.C:
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				return ErrTimeout
			}
			retries++
			if retries > c.cfg.MaxRetries {
				return ErrTimeout
			}
			c.stats.retransmits.Add(1)
			c.noteRetransmit(k, retries, int64(interval), false)
			if err := c.send(oc.dst, frame.Bytes()); err != nil {
				return err
			}
			if interval < 8*c.cfg.RetransInterval {
				interval *= 2
			}
			w, ok := wait()
			if !ok {
				return ErrTimeout
			}
			timer.Reset(w)
		}
	}
}

// Ping probes a peer's liveness.
func (c *Conn) Ping(dst transport.Addr, timeout time.Duration) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.pingsMu.Lock()
	c.pingSeq++
	seq := c.pingSeq
	ch := make(chan struct{})
	c.pings[seq] = ch
	c.pingsMu.Unlock()
	defer func() {
		c.pingsMu.Lock()
		delete(c.pings, seq)
		c.pingsMu.Unlock()
	}()

	h := wire.RPCHeader{Type: wire.TypeProbe, Seq: seq, FragCount: 1}
	deadline := time.Now().Add(timeout)
	interval := c.cfg.RetransInterval
	// One reusable timer across retries (time.After here used to leak a
	// timer per iteration until it fired).
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		if err := c.sendFrame(dst, h, nil); err != nil {
			return err
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return ErrTimeout
		}
		wait := interval
		if wait > remain {
			wait = remain
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-ch:
			return nil
		case <-timer.C:
			if time.Now().After(deadline) {
				return ErrTimeout
			}
		}
	}
}
