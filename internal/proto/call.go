package proto

import (
	"time"

	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// armTimer readies the call's reusable retransmission timer. The timer is
// pooled with the outCall so the fast path never allocates runtime timers
// (Ping and Call previously burned one per call or, worse, per retry).
func (oc *outCall) armTimer(d time.Duration) *time.Timer {
	if oc.timer == nil {
		oc.timer = time.NewTimer(d)
	} else {
		oc.timer.Reset(d)
	}
	return oc.timer
}

// quiesceTimer stops the reusable timer and drains a pending fire so the
// next armTimer starts clean.
func (oc *outCall) quiesceTimer() {
	if oc.timer != nil && !oc.timer.Stop() {
		select {
		case <-oc.timer.C:
		default:
		}
	}
}

// Call performs one remote procedure call: it transmits args to dst as one
// or more fragments, waits for the result, and drives retransmission. It
// blocks the calling goroutine, exactly as a caller thread blocks in the
// call table. seq must increase across calls of the same activity.
func (c *Conn) Call(dst transport.Addr, activity uint64, seq uint32,
	iface uint32, proc uint16, args []byte) ([]byte, error) {
	return c.CallBuf(dst, activity, seq, iface, proc, args, nil)
}

// CallBuf is Call with a caller-supplied result buffer: the result is
// appended to resBuf[:0] when capacity allows, so a caller thread that
// reuses one buffer across calls (as core.Client does) receives results
// without a per-call allocation. The returned slice aliases resBuf when it
// fits; callers that retain results across calls must copy them.
func (c *Conn) CallBuf(dst transport.Addr, activity uint64, seq uint32,
	iface uint32, proc uint16, args []byte, resBuf []byte) ([]byte, error) {

	// Single-packet calls — the fast path — skip the fragmentation helper
	// and its slice allocation entirely.
	maxP := c.maxPayload()
	nfrags := 1
	var frags [][]byte
	if len(args) > maxP {
		frags = fragment(args, maxP)
		if len(frags) > maxFragments {
			return nil, ErrTooLarge
		}
		nfrags = len(frags)
	}

	k := callKey{activity, seq}
	oc := getOutCall(k, dst, resBuf)
	c.callsMu.Lock()
	if c.closed.Load() {
		c.callsMu.Unlock()
		putOutCall(oc)
		return nil, ErrClosed
	}
	c.calls[k] = oc
	c.callsMu.Unlock()
	c.stats.callsSent.Add(1)
	defer func() {
		c.callsMu.Lock()
		if c.calls[k] == oc {
			delete(c.calls, k)
		}
		c.callsMu.Unlock()
		oc.quiesceTimer()
		putOutCall(oc)
	}()

	hdr := wire.RPCHeader{
		Type:      wire.TypeCall,
		Activity:  activity,
		Seq:       seq,
		FragCount: uint16(nfrags),
		Interface: iface,
		Proc:      proc,
	}

	// Stop-and-wait for all but the final fragment.
	for i := 0; i < nfrags-1; i++ {
		h := hdr
		h.FragIndex = uint16(i)
		h.Flags = wire.FlagPleaseAck
		f := c.newFrame(h, frags[i])
		err := c.sendFragWithAck(oc, f, uint16(i))
		f.Release()
		if err != nil {
			return nil, err
		}
	}

	// Final fragment: acknowledged implicitly by the result. The frame is
	// retained in its pooled buffer for retransmission until the call
	// completes.
	last := hdr
	last.FragIndex = uint16(nfrags - 1)
	last.Flags = wire.FlagLastFrag
	lastPayload := args
	if frags != nil {
		lastPayload = frags[nfrags-1]
	}
	frame := c.newFrame(last, lastPayload)
	defer frame.Release()
	started := time.Now()
	if err := c.tr.Send(dst, frame.Bytes()); err != nil {
		return nil, err
	}

	// Start from the adaptive per-peer estimate (Jacobson-style), with the
	// configured interval as both the ceiling and the cold-start value.
	interval := c.rtt.interval(dst, c.cfg.RetransInterval/8, c.cfg.RetransInterval)
	retries := 0
	timer := oc.armTimer(interval)
	for {
		select {
		case <-oc.done:
			oc.mu.Lock()
			res, err := oc.result, oc.err
			oc.mu.Unlock()
			if err == nil {
				c.stats.callsCompleted.Add(1)
				if retries == 0 {
					// Karn's rule: only un-retransmitted calls feed the
					// round-trip estimator.
					c.rtt.observe(dst, time.Since(started))
				}
			}
			return res, err
		case <-oc.progress:
			// Server says it is still executing: reset patience.
			retries = 0
			oc.quiesceTimer()
			timer.Reset(interval)
		case <-timer.C:
			retries++
			if retries > c.cfg.MaxRetries {
				return nil, ErrTimeout
			}
			c.stats.retransmits.Add(1)
			// Retransmissions request an explicit acknowledgement so a
			// busy server can answer without completing. The flag is
			// flipped in place in the retained frame (byte 3 of the wire
			// header) rather than rebuilding the packet.
			frame.Bytes()[3] |= wire.FlagPleaseAck
			if err := c.tr.Send(dst, frame.Bytes()); err != nil {
				return nil, err
			}
			if interval < 8*c.cfg.RetransInterval {
				interval *= 2
			}
			timer.Reset(interval)
		}
	}
}

// sendFragWithAck transmits one non-final fragment and waits for its
// explicit acknowledgement, retransmitting as needed.
func (c *Conn) sendFragWithAck(oc *outCall, frame *buffer.Frame, idx uint16) error {
	if err := c.tr.Send(oc.dst, frame.Bytes()); err != nil {
		return err
	}
	interval := c.cfg.RetransInterval
	retries := 0
	timer := oc.armTimer(interval)
	defer oc.quiesceTimer()
	for {
		select {
		case <-oc.done: // rejected or canceled mid-stream
			oc.mu.Lock()
			err := oc.err
			oc.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return err
		case got := <-oc.ackCh:
			if got.activity == oc.key.activity && got.seq == oc.key.seq && got.idx == idx {
				return nil
			}
			// Stale ack of an earlier fragment or call: keep waiting.
		case <-timer.C:
			retries++
			if retries > c.cfg.MaxRetries {
				return ErrTimeout
			}
			c.stats.retransmits.Add(1)
			if err := c.tr.Send(oc.dst, frame.Bytes()); err != nil {
				return err
			}
			if interval < 8*c.cfg.RetransInterval {
				interval *= 2
			}
			timer.Reset(interval)
		}
	}
}

// Ping probes a peer's liveness.
func (c *Conn) Ping(dst transport.Addr, timeout time.Duration) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.pingsMu.Lock()
	c.pingSeq++
	seq := c.pingSeq
	ch := make(chan struct{})
	c.pings[seq] = ch
	c.pingsMu.Unlock()
	defer func() {
		c.pingsMu.Lock()
		delete(c.pings, seq)
		c.pingsMu.Unlock()
	}()

	h := wire.RPCHeader{Type: wire.TypeProbe, Seq: seq, FragCount: 1}
	deadline := time.Now().Add(timeout)
	interval := c.cfg.RetransInterval
	// One reusable timer across retries (time.After here used to leak a
	// timer per iteration until it fired).
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		if err := c.sendFrame(dst, h, nil); err != nil {
			return err
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return ErrTimeout
		}
		wait := interval
		if wait > remain {
			wait = remain
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-ch:
			return nil
		case <-timer.C:
			if time.Now().After(deadline) {
				return ErrTimeout
			}
		}
	}
}
