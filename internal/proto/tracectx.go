package proto

import (
	"context"

	"fireflyrpc/internal/wire"
)

// Distributed trace propagation. A sampled call carries a wire.TraceCtx
// prefix (behind the negotiated FeatTrace session bit) naming the trace it
// belongs to and the span the caller opened for it. On the server, the
// dispatch layer (core.Node) rebuilds a context.Context holding that
// identity; a handler that makes further calls threads it through, and
// StartCall reads it back — so a chained call's span parents onto the
// handler's span and every hop of a multi-node call joins one causal tree.
//
// Cost discipline: the context is only consulted when tracing is enabled on
// the local Conn (the same single atomic load the stage tracer pays), and
// ContextWithTrace only allocates for calls that actually carry a sampled
// context — the steady-state untraced path never touches any of this.

// traceCtxKey keys the wire.TraceCtx value in a context.Context.
type traceCtxKey struct{}

// ContextWithTrace returns a context carrying tc, for handlers and clients
// that thread a caller's trace identity through to downstream calls. An
// invalid (zero) context returns ctx unchanged.
func ContextWithTrace(ctx context.Context, tc wire.TraceCtx) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the trace context from ctx, if one is carried.
func TraceContextFrom(ctx context.Context) (wire.TraceCtx, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(wire.TraceCtx)
	return tc, ok
}

// newSpanID returns a fresh non-zero span (or trace) identifier: a
// splitmix64 stream seeded per Conn from the local address and start time,
// so concurrent endpoints in one process draw from distinct sequences
// without coordination, and the call path pays one atomic add.
func (c *Conn) newSpanID() uint64 {
	x := c.spanSeed + c.spanCtr.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}
