// Compute farm: many caller threads making parallel RPCs to a multithreaded
// server — the structure behind Table I, on the real UDP stack. Shows the
// paper's central throughput observation: a single caller thread cannot
// saturate the path (each call waits a full round trip), but a few parallel
// threads can. The second table makes the same point without threads: one
// goroutine keeps K calls in flight through the asynchronous Go/Await API,
// and the protocol's retransmission engine carries the in-flight state.
//
//	go run ./examples/computefarm
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/stats"
	"fireflyrpc/internal/transport"
)

const procChecksum = 1 // Checksum(data: ARRAY OF CHAR): LONGCARD

// worker is the server: it checksums blocks shipped to it.
func workerInterface() *core.Interface {
	return core.NewInterface("Worker", 1).
		Proc(procChecksum, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			data := d.AliasVarBytes() // VAR IN: read in place, no copy
			if err := d.Err(); err != nil {
				return nil, err
			}
			var h uint64 = 1469598103934665603
			for _, b := range data {
				h ^= uint64(b)
				h *= 1099511628211
			}
			return core.Reply(8, func(e *marshal.Enc) { e.PutUint64(h) })
		})
}

func main() {
	st, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ct, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	cfg := proto.DefaultConfig()
	cfg.Workers = 16
	server := core.NewNode(st, cfg)
	caller := core.NewNode(ct, cfg)
	defer server.Close()
	defer caller.Close()
	server.Export(workerInterface())
	binding := caller.Bind(server.Addr(), "Worker", 1)

	const (
		blockSize = 1400 // single-packet argument
		blocks    = 4000
	)
	block := make([]byte, blockSize)
	for i := range block {
		block[i] = byte(i * 7)
	}

	fmt.Printf("%-8s %-12s %-12s %-10s\n", "threads", "blocks/s", "Mb/s", "mean µs")
	for _, threads := range []int{1, 2, 4, 8} {
		var wg sync.WaitGroup
		per := blocks / threads
		samples := make([]stats.Sample, threads)
		start := time.Now()
		for i := 0; i < threads; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				client := binding.NewClient() // one activity per thread
				for j := 0; j < per; j++ {
					t0 := time.Now()
					var sum uint64
					err := client.Call(procChecksum, 4+len(block),
						func(e *marshal.Enc) { e.PutVarBytes(block) },
						func(d *marshal.Dec) { sum = d.Uint64() })
					if err != nil {
						log.Fatalf("thread %d: %v", i, err)
					}
					if sum == 0 {
						log.Fatal("impossible checksum")
					}
					samples[i].Add(time.Since(t0))
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		done := int64(per * threads)
		var mean float64
		for i := range samples {
			mean += samples[i].Mean()
		}
		mean /= float64(threads)
		fmt.Printf("%-8d %-12.0f %-12.1f %-10.1f\n",
			threads,
			stats.Rate(done, elapsed),
			stats.Throughput(done*blockSize, elapsed),
			mean)
	}

	// Same fan-out, zero extra goroutines: one caller keeps K checksum
	// calls outstanding through Client.Go and collects them with Await.
	fmt.Printf("\n%-12s %-12s %-12s\n", "outstanding", "blocks/s", "Mb/s")
	ctx := context.Background()
	client := binding.NewClient()
	for _, k := range []int{1, 2, 4, 8, 16} {
		pend := make([]*core.Pending, 0, k)
		sums := make([]uint64, k)
		start := time.Now()
		for done := 0; done < blocks; {
			batch := k
			if blocks-done < batch {
				batch = blocks - done
			}
			pend = pend[:0]
			for j := 0; j < batch; j++ {
				p, err := client.Go(ctx, procChecksum, 4+len(block),
					func(e *marshal.Enc) { e.PutVarBytes(block) })
				if err != nil {
					log.Fatalf("Go: %v", err)
				}
				pend = append(pend, p)
			}
			for j, p := range pend {
				j := j
				if err := p.Await(ctx, func(d *marshal.Dec) { sums[j] = d.Uint64() }); err != nil {
					log.Fatalf("Await: %v", err)
				}
				if sums[j] == 0 {
					log.Fatal("impossible checksum")
				}
			}
			done += batch
		}
		elapsed := time.Since(start)
		fmt.Printf("%-12d %-12.0f %-12.1f\n",
			k,
			stats.Rate(int64(blocks), elapsed),
			stats.Throughput(int64(blocks)*blockSize, elapsed))
	}
}
