// Exerciser drives the simulated Firefly testbed interactively — the
// analogue of §5's "RPC Exerciser" with its hand-produced stubs. It sweeps
// processor counts for Null() latency and demonstrates the pre-fix
// uniprocessor pathology: without the swapped-lines fix, a uniprocessor
// loses about a packet every five hundred and pays a 600 ms retransmission
// each time, blowing mean latency up by an order of magnitude.
//
//	go run ./examples/exerciser
package main

import (
	"fmt"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/simstack"
)

func main() {
	fmt.Println("RPC Exerciser: hand stubs, 1 thread, 1000 calls to Null()")
	fmt.Printf("%-14s %-14s %-14s\n", "caller/server", "µs per call", "calls/s")
	for _, pc := range []struct{ c, s int }{{5, 5}, {2, 5}, {1, 5}, {1, 1}} {
		cfg := costmodel.NewConfig()
		cfg.CallerCPUs, cfg.ServerCPUs = pc.c, pc.s
		cfg.ExerciserStubs = true
		cfg.SwappedLines = true
		w := simstack.NewWorld(&cfg, 1)
		r := w.Run(simstack.NullSpec(&cfg), 1, 1000)
		fmt.Printf("%d/%-12d %-14.0f %-14.0f\n", pc.c, pc.s, r.LatencyMicros(), r.CallsPerSecond())
	}

	fmt.Println("\nThe §5 uniprocessor bug (swapped lines not installed):")
	fmt.Printf("%-14s %-14s %-14s %-10s\n", "fix installed", "µs per call", "drops", "retransmits")
	for _, fixed := range []bool{true, false} {
		cfg := costmodel.NewConfig()
		cfg.CallerCPUs, cfg.ServerCPUs = 1, 1
		cfg.ExerciserStubs = true
		cfg.SwappedLines = fixed
		w := simstack.NewWorld(&cfg, 7)
		r := w.Run(simstack.NullSpec(&cfg), 1, 2000)
		drops := w.CallerStack.Stats.UnswappedDrops + w.ServerStack.Stats.UnswappedDrops
		retrans := w.CallerStack.Stats.Retransmits + w.ServerStack.Stats.ResultRetrans
		fmt.Printf("%-14v %-14.0f %-14d %-10d\n", fixed, r.LatencyMicros(), drops, retrans)
	}
	fmt.Println("\n(The paper saw ~20 ms means before the fix; each lost packet costs a")
	fmt.Println("600 ms retransmission timeout, amortized over the calls in between.)")
}
