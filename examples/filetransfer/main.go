// File transfer over RPC — the workload the paper's introduction holds up
// ("remote file transfers as well as calls to local operating system entry
// points are handled via RPC"). A file server exports Read/Stat procedures;
// the client pulls a file in 1440-byte single-packet chunks — the paper's
// maximum single-packet result — and also as large multi-packet reads, then
// compares throughput.
//
//	go run ./examples/filetransfer
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/stats"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// fileStore is the server: an in-memory filesystem.
type fileStore struct {
	files map[string][]byte
}

const (
	procStat = 1 // Stat(name: Text): LONGINT  (file size, -1 if absent)
	procRead = 2 // Read(name: Text; offset: LONGCARD; count: CARDINAL;
	//              VAR OUT data: ARRAY OF CHAR)
)

func (fs *fileStore) export() *core.Interface {
	return core.NewInterface("FileServer", 1).
		Proc(procStat, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			size := int64(-1)
			if data, ok := fs.files[name.String()]; ok {
				size = int64(len(data))
			}
			return core.Reply(8, func(e *marshal.Enc) { e.PutInt64(size) })
		}).
		Proc(procRead, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			offset := d.Uint64()
			count := d.Uint32()
			if err := d.Err(); err != nil {
				return nil, err
			}
			data := fs.files[name.String()]
			if offset > uint64(len(data)) {
				offset = uint64(len(data))
			}
			end := offset + uint64(count)
			if end > uint64(len(data)) {
				end = uint64(len(data))
			}
			chunk := data[offset:end]
			return core.Reply(4+len(chunk), func(e *marshal.Enc) { e.PutVarBytes(chunk) })
		})
}

// fileClient is the caller-side wrapper (what a generated stub would be).
type fileClient struct{ c *core.Client }

func (f *fileClient) Stat(name string) (int64, error) {
	t := marshal.NewText(name)
	var size int64
	err := f.c.Call(procStat, marshal.TextWireSize(t),
		func(e *marshal.Enc) { e.PutText(t) },
		func(d *marshal.Dec) { size = d.Int64() })
	return size, err
}

func (f *fileClient) Read(name string, offset uint64, count uint32) ([]byte, error) {
	t := marshal.NewText(name)
	var data []byte
	err := f.c.Call(procRead, marshal.TextWireSize(t)+8+4,
		func(e *marshal.Enc) { e.PutText(t); e.PutUint64(offset); e.PutUint32(count) },
		func(d *marshal.Dec) { data = d.VarBytes() })
	return data, err
}

// fetch pulls a whole file with the given per-read chunk size.
func (f *fileClient) fetch(name string, chunk uint32) ([]byte, int, error) {
	size, err := f.Stat(name)
	if err != nil {
		return nil, 0, err
	}
	if size < 0 {
		return nil, 0, fmt.Errorf("no such file %q", name)
	}
	out := make([]byte, 0, size)
	calls := 0
	for off := uint64(0); off < uint64(size); {
		data, err := f.Read(name, off, chunk)
		if err != nil {
			return nil, calls, err
		}
		calls++
		out = append(out, data...)
		off += uint64(len(data))
	}
	return out, calls, nil
}

func main() {
	// Build a 1 MiB test file.
	content := make([]byte, 1<<20)
	for i := range content {
		content[i] = byte(i*2654435761 + i>>8)
	}
	fs := &fileStore{files: map[string][]byte{"/etc/motd": []byte("welcome to the firefly\n"), "/data/big": content}}

	ex := transport.NewExchange()
	server := core.NewNode(ex.Port("fileserver"), proto.DefaultConfig())
	caller := core.NewNode(ex.Port("client"), proto.DefaultConfig())
	defer server.Close()
	defer caller.Close()
	server.Export(fs.export())

	fc := &fileClient{c: caller.Bind(server.Addr(), "FileServer", 1).NewClient()}

	motd, _, err := fc.fetch("/etc/motd", 1440)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("motd: %s", motd)

	// Chunked via single-packet reads (the paper's 1440-byte maximum), then
	// via large multi-packet reads the protocol fragments transparently.
	for _, chunk := range []uint32{1440, 64 * 1024} {
		start := time.Now()
		got, calls, err := fc.fetch("/data/big", chunk)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if !bytes.Equal(got, content) {
			log.Fatal("file corrupted in transfer")
		}
		label := "single-packet results (1440 B)"
		if chunk > wire.MaxSinglePacketPayload {
			label = "multi-packet results (64 KiB)"
		}
		fmt.Printf("fetched 1 MiB in %d calls using %s: %.1f Mb/s\n",
			calls, label, stats.Throughput(int64(len(got)), elapsed))
	}
}
