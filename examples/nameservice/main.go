// Name service: the binding step the paper's fast path presupposes
// ("assuming that binding to a suitable remote instance of the interface
// has already occurred", §3.1.1 — Cedar RPC used Grapevine for this).
//
// The directory is itself a fireflyrpc service. Two application servers
// register their interfaces under names; a caller discovers them, binds,
// and calls — all over real loopback UDP, with authenticated frames.
//
//	go run ./examples/nameservice
package main

import (
	"fmt"
	"log"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/registry"
	"fireflyrpc/internal/transport"
)

var key = []byte("cluster shared key")

func newNode() *core.Node {
	tr, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return core.NewNode(transport.WithAuth(tr, key), proto.DefaultConfig())
}

func main() {
	// 1. The directory itself.
	dirNode := newNode()
	defer dirNode.Close()
	dir := registry.NewServer()
	dirNode.Export(dir.Export())
	dirAddr := dirNode.Addr()
	fmt.Printf("directory at %s\n", dirAddr)

	// 2. Two application servers export interfaces and advertise them.
	adder := newNode()
	defer adder.Close()
	adder.Export(core.NewInterface("Adder", 1).
		Proc(1, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			a, b := d.Int64(), d.Int64()
			if err := d.Err(); err != nil {
				return nil, err
			}
			return core.Reply(8, func(e *marshal.Enc) { e.PutInt64(a + b) })
		}))
	registry.NewClient(adder, dirAddr).Register("Adder/v1", adder.Addr().String(), time.Minute)

	shouter := newNode()
	defer shouter.Close()
	shouter.Export(core.NewInterface("Shouter", 1).
		Proc(1, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			msg := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			up := make([]byte, msg.Len())
			for i, c := range []byte(msg.String()) {
				if 'a' <= c && c <= 'z' {
					c -= 32
				}
				up[i] = c
			}
			out := marshal.NewText(string(up) + "!")
			return core.Reply(marshal.TextWireSize(out), func(e *marshal.Enc) { e.PutText(out) })
		}))
	registry.NewClient(shouter, dirAddr).Register("Shouter/v1", shouter.Addr().String(), time.Minute)

	// 3. A caller discovers both through the directory and uses them.
	caller := newNode()
	defer caller.Close()
	reg := registry.NewClient(caller, dirAddr)

	names, err := reg.List("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directory lists: %v\n", names)

	addrStr, err := reg.Lookup("Adder/v1")
	if err != nil {
		log.Fatal(err)
	}
	addAddr, _ := transport.ResolveUDPAddr(addrStr)
	add := caller.Bind(addAddr, "Adder", 1).NewClient()
	var sum int64
	if err := add.Call(1, 16,
		func(e *marshal.Enc) { e.PutInt64(40); e.PutInt64(2) },
		func(d *marshal.Dec) { sum = d.Int64() }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Adder/v1 at %s says 40+2 = %d\n", addrStr, sum)

	addrStr, err = reg.Lookup("Shouter/v1")
	if err != nil {
		log.Fatal(err)
	}
	shoutAddr, _ := transport.ResolveUDPAddr(addrStr)
	shout := caller.Bind(shoutAddr, "Shouter", 1).NewClient()
	in := marshal.NewText("firefly rpc lives")
	var out *marshal.Text
	if err := shout.Call(1, marshal.TextWireSize(in),
		func(e *marshal.Enc) { e.PutText(in) },
		func(d *marshal.Dec) { out = d.GetText() }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Shouter/v1 says %s\n", out.String())
}
