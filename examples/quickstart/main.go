// Quickstart: define a service, export it, bind, and call — all in one
// process over the shared-memory transport (the paper's "local RPC", which
// uses the same stubs as inter-machine RPC; only the transport differs).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
)

func main() {
	// 1. One in-process exchange stands in for the machine's shared memory;
	//    each Node is an address space attached to it.
	ex := transport.NewExchange()
	serverNode := core.NewNode(ex.Port("server"), proto.DefaultConfig())
	callerNode := core.NewNode(ex.Port("caller"), proto.DefaultConfig())
	defer serverNode.Close()
	defer callerNode.Close()

	// 2. Export an interface. These stubs are hand-written for brevity; see
	//    internal/testsvc for the stubgen-generated equivalent.
	greeter := core.NewInterface("Greeter", 1).
		Proc(1, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			reply := marshal.NewText("hello, " + name.String() + "!")
			return core.Reply(marshal.TextWireSize(reply), func(e *marshal.Enc) {
				e.PutText(reply)
			})
		})
	serverNode.Export(greeter)

	// 3. Bind and call. A Binding chooses the transport route at bind time
	//    (as the Firefly chose Starter/Transporter/Ender); each calling
	//    goroutine gets its own Client (activity).
	binding := callerNode.Bind(serverNode.Addr(), "Greeter", 1)
	if err := binding.Probe(time.Second); err != nil {
		log.Fatalf("server not answering: %v", err)
	}
	client := binding.NewClient()

	arg := marshal.NewText("firefly")
	var reply *marshal.Text
	start := time.Now()
	err := client.Call(1, marshal.TextWireSize(arg),
		func(e *marshal.Enc) { e.PutText(arg) },
		func(d *marshal.Dec) { reply = d.GetText() })
	if err != nil {
		log.Fatalf("call failed: %v", err)
	}
	fmt.Printf("%s  (%v round trip, local transport)\n", reply.String(), time.Since(start))
}
