package fireflyrpc

import (
	"strings"
	"testing"
	"time"
)

// TestFacadeRealStack drives the public API end to end: exchange, nodes,
// interface, binding, client.
func TestFacadeRealStack(t *testing.T) {
	ex := NewExchange()
	server := NewNode(ex.Port("s"), DefaultProtoConfig())
	caller := NewNode(ex.Port("c"), DefaultProtoConfig())
	defer server.Close()
	defer caller.Close()

	iface := NewInterface("Echo", 1).
		Proc(1, func(_ Addr, d *Dec) ([]byte, error) {
			msg := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			out := NewText(strings.ToUpper(msg.String()))
			return Reply(1+4+out.Len(), func(e *Enc) { e.PutText(out) })
		})
	server.Export(iface)

	binding := caller.Bind(server.Addr(), "Echo", 1)
	if err := binding.Probe(time.Second); err != nil {
		t.Fatalf("probe: %v", err)
	}
	client := binding.NewClient()
	in := NewText("whisper")
	var out *Text
	err := client.Call(1, 1+4+in.Len(),
		func(e *Enc) { e.PutText(in) },
		func(d *Dec) { out = d.GetText() })
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "WHISPER" {
		t.Fatalf("out = %q", out.String())
	}
}

// TestFacadeSimulator drives the simulated testbed through the facade and
// checks the headline number.
func TestFacadeSimulator(t *testing.T) {
	cfg := NewSimConfig()
	w := NewSimWorld(&cfg, 1)
	r := w.Run(SimNull(&cfg), 1, 300)
	lat := r.LatencyMicros()
	if lat < 2500 || lat > 2800 {
		t.Fatalf("simulated Null latency %.0f µs, want ~2661", lat)
	}
	if SimMaxResult(&cfg).ResultBytes != 1440 || SimMaxArg(&cfg).ArgBytes != 1440 {
		t.Fatal("Test interface payload sizes wrong")
	}
}

// TestFacadeExperiments lists and runs one experiment through the facade.
func TestFacadeExperiments(t *testing.T) {
	all := Experiments()
	if len(all) != 18 { // Tables I–XII + util + improvements + streaming + ablations + tail + overload
		t.Fatalf("%d experiments, want 18", len(all))
	}
	e, ok := ExperimentByID("VII")
	if !ok {
		t.Fatal("Table VII missing")
	}
	tb := e.Run(ExperimentOptions{Quality: 0.05, Seed: 1})
	if !strings.Contains(tb.Render(), "606") {
		t.Fatal("Table VII does not show the 606 µs total")
	}
}

// TestFacadeIDL compiles and generates stubs through the facade.
func TestFacadeIDL(t *testing.T) {
	m, err := ParseIDL("DEFINITION MODULE Tiny; PROCEDURE Ping(); END Tiny.")
	if err != nil {
		t.Fatal(err)
	}
	code, err := GenerateStubs(m, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "TinyClient") {
		t.Fatal("generated code missing client stub")
	}
}
