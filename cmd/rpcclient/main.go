// Command rpcclient measures the real UDP stack the way Table I measures
// the Firefly: K goroutines (threads) each performing sequenced calls to
// Null() and MaxResult(b) against an rpcserver, reporting latency,
// calls/second, and megabits/second per thread count. With -k above 1,
// each thread keeps that many calls in flight through the asynchronous
// Go/Await API instead of blocking one call at a time.
//
//	rpcclient -server 127.0.0.1:5530 -calls 10000 -threads 1,2,3,4,8 -k 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/debughttp"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/stats"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

func main() {
	server := flag.String("server", "127.0.0.1:5530", "rpcserver address")
	calls := flag.Int("calls", 10000, "total calls per measurement")
	threadList := flag.String("threads", "1,2,3,4,8", "comma-separated caller thread counts")
	fanout := flag.Int("k", 1, "async calls kept in flight per thread (1 = blocking)")
	debugAddr := flag.String("debug", "", "serve /debug/rpc, expvar, and pprof on this HTTP address; empty = off")
	traceN := flag.Int("trace", 0, "stage-trace one call in N and record latency histograms; 0 = off")
	flag.Parse()
	if *fanout < 1 {
		log.Fatalf("rpcclient: -k must be at least 1")
	}

	tr, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		log.Fatalf("rpcclient: %v", err)
	}
	node := core.NewNode(tr, proto.DefaultConfig())
	defer node.Close()
	if *traceN > 0 {
		node.Conn().SetTracing(*traceN, proto.DefaultTraceRing)
	}
	if *debugAddr != "" {
		debughttp.Register("client", node.Conn())
		dbg, err := debughttp.Serve(*debugAddr)
		if err != nil {
			log.Fatalf("rpcclient: debug listener: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("rpcclient: debug surface on http://%s/debug/rpc\n", dbg.Addr())
	}
	remote, err := transport.ResolveUDPAddr(*server)
	if err != nil {
		log.Fatalf("rpcclient: %v", err)
	}
	binding := node.Bind(remote, testsvc.TestName, testsvc.TestVersion)
	if err := binding.Probe(2 * time.Second); err != nil {
		log.Fatalf("rpcclient: server %s not answering: %v", *server, err)
	}

	fmt.Printf("%-8s %-12s %-10s %-14s %-10s\n",
		"threads", "Null µs/call", "Null/s", "Max µs/call", "Max Mb/s")
	for _, f := range strings.Split(*threadList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			log.Fatalf("rpcclient: bad thread count %q", f)
		}
		var nullLat, nullRate, maxLat, maxRate float64
		if *fanout == 1 {
			nullLat, nullRate = run(binding, n, *calls, func(c *testsvc.TestClient, buf []byte) error {
				return c.Null()
			})
			maxLat, maxRate = run(binding, n, *calls, func(c *testsvc.TestClient, buf []byte) error {
				return c.MaxResult(buf)
			})
		} else {
			nullLat, nullRate = runAsync(binding, n, *calls, *fanout,
				func(cl *core.Client, ctx context.Context) (*core.Pending, error) {
					return cl.Go(ctx, testsvc.TestProcNull, 0, nil)
				}, nil)
			maxLat, maxRate = runAsync(binding, n, *calls, *fanout,
				func(cl *core.Client, ctx context.Context) (*core.Pending, error) {
					return cl.Go(ctx, testsvc.TestProcMaxResult, 0, nil)
				},
				func(buf []byte) func(*marshal.Dec) {
					return func(d *marshal.Dec) { d.FixedBytes(buf) }
				})
		}
		fmt.Printf("%-8d %-12.1f %-10.0f %-14.1f %-10.2f\n",
			n, nullLat, nullRate, maxLat,
			maxRate*float64(wire.MaxSinglePacketPayload)*8/1e6)
	}

	if *traceN > 0 {
		for _, ph := range node.Conn().PeerHistograms() {
			s := ph.Hist.Summarize()
			fmt.Printf("latency to %s: n=%d p50=%.1fµs p95=%.1fµs p99=%.1fµs p99.9=%.1fµs max=%.1fµs\n",
				ph.Peer, s.N, s.P50Us, s.P95Us, s.P99Us, s.P999Us, s.MaxUs)
		}
	}
}

// run drives n goroutines through total calls and returns (mean µs, calls/s).
func run(b *core.Binding, n, total int, call func(*testsvc.TestClient, []byte) error) (float64, float64) {
	per := total / n
	var wg sync.WaitGroup
	samples := make([]stats.Sample, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := testsvc.NewTestClient(b)
			buf := make([]byte, wire.MaxSinglePacketPayload)
			for j := 0; j < per; j++ {
				t0 := time.Now()
				if err := call(client, buf); err != nil {
					log.Printf("rpcclient: call failed: %v", err)
					return
				}
				samples[i].Add(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	count := 0
	var meanSum float64
	for i := range samples {
		meanSum += samples[i].Mean() * float64(samples[i].N())
		count += samples[i].N()
	}
	if count == 0 {
		return 0, 0
	}
	return meanSum / float64(count), stats.Rate(int64(count), elapsed)
}

// runAsync drives n goroutines, each keeping k calls in flight through the
// async API, and returns (mean µs per call, calls/s). Per-call latency is
// the batch round-trip amortized over the k calls it carried.
func runAsync(b *core.Binding, n, total, k int,
	start func(*core.Client, context.Context) (*core.Pending, error),
	mkDec func([]byte) func(*marshal.Dec)) (float64, float64) {
	per := total / n
	var wg sync.WaitGroup
	samples := make([]stats.Sample, n)
	ctx := context.Background()
	t0 := time.Now()
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := b.NewClient()
			var dec func(*marshal.Dec)
			if mkDec != nil {
				dec = mkDec(make([]byte, wire.MaxSinglePacketPayload))
			}
			pend := make([]*core.Pending, 0, k)
			for done := 0; done < per; {
				batch := k
				if per-done < batch {
					batch = per - done
				}
				bt0 := time.Now()
				pend = pend[:0]
				for j := 0; j < batch; j++ {
					p, err := start(cl, ctx)
					if err != nil {
						log.Printf("rpcclient: Go failed: %v", err)
						return
					}
					pend = append(pend, p)
				}
				for _, p := range pend {
					if err := p.Await(ctx, dec); err != nil {
						log.Printf("rpcclient: Await failed: %v", err)
						return
					}
				}
				perCall := time.Since(bt0) / time.Duration(batch)
				for j := 0; j < batch; j++ {
					samples[i].Add(perCall)
				}
				done += batch
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	count := 0
	var meanSum float64
	for i := range samples {
		meanSum += samples[i].Mean() * float64(samples[i].N())
		count += samples[i].N()
	}
	if count == 0 {
		return 0, 0
	}
	return meanSum / float64(count), stats.Rate(int64(count), elapsed)
}
