// Command fireflysim executes a JSON runbook — a declarative macro-scenario
// over N simulated nodes (internal/runbook) — and turns its assertion
// outcome into an exit status:
//
//	0  the run completed and every assertion passed
//	1  the run completed but an assertion failed (or -validate found a bad file)
//	2  the runbook could not be loaded or executed
//
// Runs are seed-deterministic: the same runbook and seed produce a
// byte-identical results JSON (-o) and trace (-trace) on every run.
//
// Usage:
//
//	fireflysim -f runbooks/overload_deadline.json -o results.json
//	fireflysim -validate runbooks/*.json
//	fireflysim -f runbooks/clean_baseline.json -serve :8080 -pace 1
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"fireflyrpc/internal/debughttp"
	"fireflyrpc/internal/runbook"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		file      = flag.String("f", "", "runbook `file` to execute")
		validate  = flag.Bool("validate", false, "validate the argument runbook files and exit")
		out       = flag.String("o", "", "write the machine-readable results JSON to `file`")
		tracePath = flag.String("trace", "", "write a Perfetto-compatible trace JSON to `file`")
		seed      = flag.Uint64("seed", 0, "override the runbook's seed")
		quiet     = flag.Bool("q", false, "suppress the human-readable report")
		serve     = flag.String("serve", "", "serve the live debug surface on `addr` during the run")
		pace      = flag.Float64("pace", 0, "wall-clock pacing factor (1 = virtual real time, 0 = as fast as possible)")
	)
	flag.Parse()

	if *validate {
		paths := flag.Args()
		if *file != "" {
			paths = append([]string{*file}, paths...)
		}
		if len(paths) == 0 {
			fmt.Fprintln(os.Stderr, "fireflysim: -validate needs runbook files as arguments")
			return 2
		}
		bad := false
		for _, p := range paths {
			if _, err := runbook.Load(p); err != nil {
				fmt.Fprintln(os.Stderr, err)
				bad = true
			} else if !*quiet {
				fmt.Printf("ok %s\n", p)
			}
		}
		if bad {
			return 1
		}
		return 0
	}

	if *file == "" {
		fmt.Fprintln(os.Stderr, "fireflysim: -f runbook.json required (or -validate file...)")
		flag.Usage()
		return 2
	}
	opts := runbook.Options{Seed: *seed, Pace: *pace}
	var traceFile *os.File
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fireflysim:", err)
			return 2
		}
		traceFile = tf
		opts.Trace = tf
	}
	if *serve != "" {
		opts.DebugName = "fireflysim"
		srv := &http.Server{Addr: *serve, Handler: debughttp.Handler()}
		go srv.ListenAndServe()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fireflysim: live debug surface on http://%s/debug/rpc/sim\n", *serve)
	}

	rep, err := runbook.ExecuteFile(*file, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fireflysim:", err)
		return 2
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fireflysim:", err)
			return 2
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, rep.JSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fireflysim:", err)
			return 2
		}
	}
	if !*quiet {
		rep.Render(os.Stdout)
	}
	if !rep.Pass {
		return 1
	}
	return 0
}
