// Command rpcserver exports the paper's Test interface over real UDP, the
// counterpart of the multithreaded server of §2.1.
//
//	rpcserver -listen 127.0.0.1:5530 -workers 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/debughttp"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/overload"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
)

// service implements testsvc.TestServer.
type service struct{}

func (service) Null() error { return nil }

func (service) MaxResult(buffer []byte) error {
	for i := range buffer {
		buffer[i] = byte(i)
	}
	return nil
}

func (service) MaxArg(buffer []byte) error {
	if len(buffer) != 1440 {
		return errors.New("bad MaxArg length")
	}
	return nil
}

func (service) Add4(a, b, c, d int32) (int32, error) { return a + b + c + d, nil }

func (service) Reverse(data []byte, reversed *[]byte) error {
	out := make([]byte, len(data))
	for i, v := range data {
		out[len(data)-1-i] = v
	}
	*reversed = out
	return nil
}

func (service) Greet(name *marshal.Text) (*marshal.Text, error) {
	return marshal.NewText("hello, " + name.String()), nil
}

func (service) Increment(counter *uint32) error { *counter++; return nil }

func main() {
	listen := flag.String("listen", "127.0.0.1:5530", "UDP address to serve on")
	workers := flag.Int("workers", 8, "server threads kept waiting for calls")
	debugAddr := flag.String("debug", "", "serve /debug/rpc, expvar, and pprof on this HTTP address (e.g. 127.0.0.1:6060); empty = off")
	traceN := flag.Int("trace", 0, "stage-trace one call in N and record latency histograms; 0 = off")
	admit := flag.String("admit", "", "admission control as policy:capacity (fifo, lifo, or deadline; e.g. deadline:256); empty = off")
	flag.Parse()

	var admission overload.Config
	if *admit != "" {
		var err error
		admission, err = parseAdmit(*admit)
		if err != nil {
			log.Fatalf("rpcserver: -admit: %v", err)
		}
	}

	tr, err := transport.ListenUDP(*listen)
	if err != nil {
		log.Fatalf("rpcserver: %v", err)
	}
	cfg := proto.DefaultConfig()
	cfg.Workers = *workers
	cfg.Admission = admission
	node := core.NewNode(tr, cfg)
	node.Export(testsvc.ExportTest(service{}))
	if *traceN > 0 {
		node.Conn().SetTracing(*traceN, proto.DefaultTraceRing)
	}
	if *debugAddr != "" {
		debughttp.Register("server", node.Conn())
		dbg, err := debughttp.Serve(*debugAddr)
		if err != nil {
			log.Fatalf("rpcserver: debug listener: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("rpcserver: debug surface on http://%s/debug/rpc\n", dbg.Addr())
	}
	if admission.Capacity > 0 {
		fmt.Printf("rpcserver: admission control %s, capacity %d\n", admission.Policy, admission.Capacity)
	}
	fmt.Printf("rpcserver: Test interface v%d on %s (%d workers)\n",
		testsvc.TestVersion, node.Addr(), *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := node.Conn().Stats()
	fmt.Printf("rpcserver: served %d calls (%d dups suppressed, %d result retransmits, %d shed)\n",
		st.CallsServed, st.DupCalls, st.ResultRetrans, st.CallsShed)
	node.Close()
}

// parseAdmit reads the -admit value: "policy:capacity".
func parseAdmit(s string) (overload.Config, error) {
	name, capSpec, ok := strings.Cut(s, ":")
	if !ok {
		return overload.Config{}, fmt.Errorf("want policy:capacity, got %q", s)
	}
	pol, err := overload.ParsePolicy(name)
	if err != nil {
		return overload.Config{}, err
	}
	capacity, err := strconv.Atoi(capSpec)
	if err != nil || capacity < 1 {
		return overload.Config{}, fmt.Errorf("bad capacity %q", capSpec)
	}
	return overload.Config{Policy: pol, Capacity: capacity}, nil
}
