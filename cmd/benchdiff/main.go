// Command benchdiff compares two BENCH_realstack.json files cell by cell
// and exits non-zero when a regression crosses the fail thresholds.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -failratio 0 -allocslack 0 BENCH_realstack.json bench-smoke.json
//
// Time thresholds are ratios with a noise floor; -failratio 0 disables time
// failures entirely (CI compares runs from different machines and gates on
// allocation counts, which are machine-independent).
package main

import (
	"flag"
	"fmt"
	"os"

	"fireflyrpc/internal/realbench"
)

func main() {
	warnRatio := flag.Float64("warnratio", 1.30, "warn when new/old ns-per-op exceeds this ratio (0 disables)")
	failRatio := flag.Float64("failratio", 2.0, "fail when new/old ns-per-op exceeds this ratio (0 disables)")
	allocSlack := flag.Int64("allocslack", 0, "allowed allocs/op increase before a cell fails")
	minNs := flag.Float64("minns", 200, "noise floor: skip time comparison when both sides are below this many ns/op")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.json new.json")
		os.Exit(2)
	}
	oldSuite, err := realbench.ReadSuite(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newSuite, err := realbench.ReadSuite(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	rep := realbench.Diff(oldSuite, newSuite, realbench.DiffOptions{
		WarnRatio:  *warnRatio,
		FailRatio:  *failRatio,
		AllocSlack: *allocSlack,
		MinNs:      *minNs,
	})
	fmt.Printf("benchdiff %s -> %s\n", flag.Arg(0), flag.Arg(1))
	fmt.Print(rep.Format())
	if rep.Failed() {
		os.Exit(1)
	}
}
