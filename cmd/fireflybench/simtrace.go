package main

import (
	"fmt"
	"os"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/simstack"
	"fireflyrpc/internal/simtrace"
)

// runSimTrace drives a short MaxResult workload on the simulated testbed
// with the timeline tracer attached, writes Chrome trace-event JSON for
// Perfetto, and prints the per-resource utilization report.
func runSimTrace(outPath string, seed uint64, threads, calls int) {
	cfg := costmodel.NewConfig()
	w := simstack.NewWorld(&cfg, seed)
	b := simtrace.AttachWorld(w)
	r := w.Run(simstack.MaxResultSpec(&cfg), threads, calls)

	f, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: %v\n", err)
		os.Exit(1)
	}
	n, err := b.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: writing %s: %v\n", outPath, err)
		os.Exit(1)
	}

	c := b.Counts()
	fmt.Printf("simulated %d MaxResult calls over %d threads in %v virtual time\n",
		r.Calls, threads, r.Elapsed)
	fmt.Printf("wrote %s: %d trace events, %d bytes (load in ui.perfetto.dev)\n",
		outPath, c.Events, n)
	fmt.Printf("kernel events: %d scheduled, %d fired\n\n", c.Scheduled, c.Fired)
	fmt.Printf("caller busy CPUs %.2f, server %.2f (paper §2.1: ~1.2 caller at saturation)\n\n",
		r.CallerCPU, r.ServerCPU)
	fmt.Print(simtrace.RenderResourceTable(simtrace.ResourceReport(w.K)))
}
