// Command fireflybench regenerates the paper's evaluation tables on the
// simulated Firefly testbed and prints them beside the published values.
//
// Usage:
//
//	fireflybench                  # all tables at full paper scale
//	fireflybench -table I,VIII    # selected tables
//	fireflybench -quality 0.1     # 10% of the paper's call counts (fast)
//	fireflybench -list            # list experiments
//	fireflybench -real            # benchmark the real stack, write BENCH_realstack.json
//	fireflybench -breakdown       # traced per-stage latency accounting (Tables VI/VII style)
//	fireflybench -realcheck F     # validate a BENCH_realstack.json and exit
//	fireflybench -simtrace out.json  # Perfetto timeline + utilization report for a simulated run
//	fireflybench -real -faulty lossy.json  # real-stack benchmark under a faultnet impairment profile
//	fireflybench -real -batch     # real-stack benchmark over the batched UDP datapath
//	fireflybench -batchcompare    # per-frame vs batched UDP fan-out, back to back
//	fireflybench -real -traced    # real-stack benchmark with tracing on (@trace cells)
//	fireflybench -traceoverhead   # tracing-on vs tracing-off async Null, gated ≤5%
//	fireflybench -mergedtrace out.json  # one Perfetto doc: simulated run + real chained-call spans
//	fireflybench -cluster         # replica-set hedged vs unhedged tail sweep (@cluster cells)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"fireflyrpc/internal/exper"
	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/realbench"
)

func main() {
	tables := flag.String("table", "all", "comma-separated table IDs (I..XII, improvements, streaming, ablations) or 'all'")
	quality := flag.Float64("quality", 1.0, "fraction of the paper's call counts to run")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	trace := flag.Bool("trace", false, "trace one Null() and one MaxResult(b) call through the simulated fast path and exit")
	real := flag.Bool("real", false, "benchmark the real RPC stack (exchange + UDP loopback) instead of the simulation")
	realOut := flag.String("realout", "BENCH_realstack.json", "output path for -real results")
	realThreads := flag.String("realthreads", "1,2,4,8", "comma-separated caller-thread counts for -real")
	realFanout := flag.String("realfanout", "1,8,64", "comma-separated async fan-out widths for -real")
	realCases := flag.String("realcases", "", "comma-separated -real case names (Null, MaxArg, MaxResult); empty = all")
	realTime := flag.String("realtime", "", "per-cell benchmark time for -real (e.g. 50ms); empty = the testing default (1s)")
	realMemOnly := flag.Bool("realmem", false, "restrict -real to the in-process exchange transport")
	realTransport := flag.String("transport", "", "restrict -real to one transport: exchange, udp, udpbatch, or tcp; empty = mem+udp sweep")
	realCheck := flag.String("realcheck", "", "validate this BENCH_realstack.json and exit")
	realBatch := flag.Bool("batch", false, "run -real UDP cells over the batched datapath (sendmmsg/GSO); results diff under the @batch namespace")
	realRecvMode := flag.String("recvmode", "", "batched engine receive mode for -batch: park (default) or spin")
	batchCompare := flag.Bool("batchcompare", false, "run the per-frame vs batched UDP async fan-out comparison and exit")
	batchCompareCalls := flag.Int("batchcomparecalls", 20000, "calls per side for -batchcompare")
	batchCompareWidth := flag.Int("batchcomparewidth", 64, "async fan-out width for -batchcompare")
	realTraced := flag.Bool("traced", false, "run -real cells with stage tracing on at the production posture; results diff under the @trace namespace")
	traceOverhead := flag.Bool("traceoverhead", false, "run the tracing-on vs tracing-off async Null comparison and exit non-zero above the bound")
	traceOverheadCalls := flag.Int("traceoverheadcalls", 20000, "calls per round for -traceoverhead")
	traceOverheadWidth := flag.Int("traceoverheadwidth", 64, "async fan-out width for -traceoverhead")
	traceOverheadBound := flag.Float64("traceoverheadbound", 1.05, "maximum tracing-on/off ns-per-op ratio for -traceoverhead")
	mergedTrace := flag.String("mergedtrace", "", "write one Perfetto JSON combining a simulated run and real chained-call spans to this path and exit")
	mergedChainCalls := flag.Int("mergedchaincalls", 16, "real two-hop chained calls for -mergedtrace")
	faulty := flag.String("faulty", "", "faultnet profile JSON; -real cells run behind this impairment")
	faultSeed := flag.Uint64("faultseed", 1, "impairment schedule seed for -faulty")
	breakdown := flag.Bool("breakdown", false, "trace Null calls through both endpoints and print the per-stage latency accounting")
	breakdownCalls := flag.Int("breakdowncalls", 2000, "calls to trace for -breakdown")
	breakdownSample := flag.Int("breakdownsample", 64, "sampling stride for the -breakdown overhead measurement")
	clusterSweep := flag.Bool("cluster", false, "run the replica-set hedged vs unhedged tail sweep and write @cluster cells to -realout")
	clusterReplicas := flag.Int("clusterreplicas", 3, "replica-set size for -cluster")
	clusterLoss := flag.Float64("clusterloss", 0.10, "caller-uplink frame-drop probability for -cluster")
	clusterCalls := flag.Int("clustercalls", 1000, "measured calls per caller thread for -cluster")
	simTrace := flag.String("simtrace", "", "write a Chrome trace-event JSON timeline of a simulated run to this path and exit")
	simTraceThreads := flag.Int("simtracethreads", 4, "caller threads for -simtrace")
	simTraceCalls := flag.Int("simtracecalls", 200, "total calls for -simtrace")
	flag.Parse()

	if *realCheck != "" {
		if err := realbench.CheckFile(*realCheck); err != nil {
			fmt.Fprintf(os.Stderr, "fireflybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *realCheck)
		return
	}

	if *breakdown {
		runBreakdown(*breakdownCalls, *breakdownSample)
		return
	}

	if *batchCompare {
		runBatchCompare(*batchCompareCalls, *batchCompareWidth)
		return
	}

	if *traceOverhead {
		runTraceOverhead(*traceOverheadCalls, *traceOverheadWidth, *traceOverheadBound)
		return
	}

	if *clusterSweep {
		runCluster(*realOut, *clusterReplicas, *clusterLoss, *clusterCalls, *seed)
		return
	}

	if *mergedTrace != "" {
		runMergedTrace(*mergedTrace, *seed, *simTraceThreads, *simTraceCalls, *mergedChainCalls)
		return
	}

	if *simTrace != "" {
		runSimTrace(*simTrace, *seed, *simTraceThreads, *simTraceCalls)
		return
	}

	if *real {
		var prof *faultnet.Profile
		if *faulty != "" {
			p, err := faultnet.Load(*faulty)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fireflybench: -faulty: %v\n", err)
				os.Exit(2)
			}
			prof = p
		}
		runReal(*realOut, *realThreads, *realFanout, *realCases, *realTime, *realMemOnly, *realTransport, prof, *faultSeed, *realBatch, *realRecvMode, *realTraced)
		return
	}
	if *realTraced {
		fmt.Fprintln(os.Stderr, "fireflybench: -traced requires -real")
		os.Exit(2)
	}
	if *realTransport != "" {
		fmt.Fprintln(os.Stderr, "fireflybench: -transport requires -real")
		os.Exit(2)
	}
	if *faulty != "" {
		fmt.Fprintln(os.Stderr, "fireflybench: -faulty requires -real")
		os.Exit(2)
	}
	if *realBatch || *realRecvMode != "" {
		fmt.Fprintln(os.Stderr, "fireflybench: -batch/-recvmode require -real")
		os.Exit(2)
	}

	if *trace {
		traceCalls(*seed)
		return
	}

	if *list {
		for _, e := range exper.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := exper.Options{Quality: *quality, Seed: *seed}

	var selected []exper.Experiment
	if strings.EqualFold(*tables, "all") {
		selected = exper.All()
	} else {
		for _, id := range strings.Split(*tables, ",") {
			e, ok := exper.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "fireflybench: unknown table %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("Performance of Firefly RPC — reproduction (quality %.2f, seed %d)\n\n", *quality, *seed)
	for _, e := range selected {
		start := time.Now()
		tb := e.Run(opts)
		fmt.Print(tb.Render())
		fmt.Printf("  [%s in %.1fs wall]\n\n", e.ID, time.Since(start).Seconds())
	}
}

// runReal benchmarks the real stack and writes the JSON suite.
func runReal(outPath, threadSpec, fanoutSpec, caseSpec, timeSpec string, memOnly bool, transportName string, prof *faultnet.Profile, faultSeed uint64, batch bool, recvMode string, traced bool) {
	parse := func(spec, flagName string) []int {
		var out []int
		for _, s := range strings.Split(spec, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "fireflybench: bad %s entry %q\n", flagName, s)
				os.Exit(2)
			}
			out = append(out, n)
		}
		return out
	}
	threads := parse(threadSpec, "-realthreads")
	fanout := parse(fanoutSpec, "-realfanout")
	var caseNames []string
	if caseSpec != "" {
		for _, s := range strings.Split(caseSpec, ",") {
			caseNames = append(caseNames, strings.TrimSpace(s))
		}
	}
	if timeSpec != "" {
		// realbench drives testing.Benchmark, which sizes each cell from the
		// standard -test.benchtime flag; registering the testing flags makes
		// it settable from this non-test binary (CI's bench-smoke job uses
		// this to cut the run from minutes to seconds).
		testing.Init()
		if err := flag.Set("test.benchtime", timeSpec); err != nil {
			fmt.Fprintf(os.Stderr, "fireflybench: bad -realtime %q: %v\n", timeSpec, err)
			os.Exit(2)
		}
	}
	datapath := ""
	if batch {
		datapath = ", batched UDP datapath"
		if recvMode != "" {
			datapath += " (" + recvMode + ")"
		}
	}
	if traced {
		datapath += ", tracing on"
	}
	if prof != nil {
		fmt.Printf("Real-stack Table I analogue under profile %q, fault seed %d (threads %v, async fan-out %v%s)\n",
			prof.Name, faultSeed, threads, fanout, datapath)
	} else {
		fmt.Printf("Real-stack Table I analogue (threads %v, async fan-out %v%s)\n", threads, fanout, datapath)
	}
	suite := realbench.Run(realbench.Options{
		Threads:     threads,
		Outstanding: fanout,
		Cases:       caseNames,
		MemOnly:     memOnly,
		Transport:   transportName,
		Log:         os.Stdout,
		Profile:     prof,
		FaultSeed:   faultSeed,
		Batch:       batch,
		RecvMode:    recvMode,
		Trace:       traced,
	})
	if err := suite.WriteJSON(outPath); err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: writing %s: %v\n", outPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", outPath, len(suite.Results))
}

// runCluster runs the hedged vs unhedged replica-set sweep and writes the
// @cluster cells as their own suite — the measurement behind the
// EXPERIMENTS.md hedging table and the cluster cells in the committed
// baseline.
func runCluster(outPath string, replicas int, loss float64, callsPerThread int, seed uint64) {
	fmt.Printf("Replica-set tail sweep: %d replicas, %.0f%% caller-uplink loss, 2%% 20ms stragglers\n",
		replicas, 100*loss)
	results, err := realbench.ClusterSweep(realbench.ClusterOptions{
		Replicas:       replicas,
		Loss:           loss,
		CallsPerThread: callsPerThread,
		Seed:           seed,
		Log:            os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: cluster sweep: %v\n", err)
		os.Exit(1)
	}
	suite := realbench.Suite{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Note: "Replica-set tail sweep: blocking Null through the cluster " +
			"balancer against 3 replicas behind a lossy caller uplink with " +
			"deterministic server-side stragglers, hedged vs unhedged.",
		Results: results,
	}
	if err := suite.WriteJSON(outPath); err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: writing %s: %v\n", outPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", outPath, len(suite.Results))
}

// runBatchCompare runs the per-frame vs batched UDP async fan-out
// comparison back to back in this process and prints both sides plus the
// self-relative speedup — the measurement behind the EXPERIMENTS.md batched
// datapath table.
func runBatchCompare(calls, width int) {
	res, err := realbench.BatchCompare(calls, width)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: batchcompare: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("UDP async Null fan-out, %d outstanding, %d calls per side\n\n", res.Outstanding, res.PerFrame.Calls)
	row := func(name string, s realbench.BatchSide) {
		fmt.Printf("  %-9s %8.0f ns/op  %9.0f calls/s  %5.2f syscalls/call  (send %d ops/%d frames, recv %d ops/%d frames, gso %d)\n",
			name, s.NsPerOp, s.CallsPerSec, s.SyscallsPerCall,
			s.SendBatches, s.SendFrames, s.RecvBatches, s.RecvFrames, s.GSOSends)
	}
	row("per-frame", res.PerFrame)
	row("batched", res.Batched)
	fmt.Printf("\nspeedup: %.2fx (batched vs per-frame, self-relative)\n", res.Speedup)
}

// runBreakdown prints the stage accounting table and the tracing overhead,
// exiting non-zero when the telescoping stage sum fails to explain the
// measured end-to-end latency within 10% — the same self-check the paper
// applies to Table VIII's model-vs-measurement comparison.
func runBreakdown(calls, sample int) {
	res, err := realbench.Breakdown(calls, sample)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: breakdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Null call stage breakdown (exchange transport, %d traced calls)\n\n", res.Report.Calls)
	fmt.Print(res.Report.Format())
	fmt.Printf("\ntracing overhead on Null at 1-in-%d sampling: %.0f ns/call untraced, %.0f ns/call traced (%+.1f%%)\n",
		res.SampleEvery, res.NullNsUntraced, res.NullNsTraced, res.OverheadPercent)
	if un := res.Report.Unaccounted(); un < -0.10 || un > 0.10 {
		fmt.Fprintf(os.Stderr, "fireflybench: stage sum is off by %+.1f%% of end-to-end latency (tolerance 10%%)\n", 100*un)
		os.Exit(1)
	}
	if res.Report.Calls == 0 {
		fmt.Fprintln(os.Stderr, "fireflybench: no fully-stamped calls were accounted")
		os.Exit(1)
	}
}
