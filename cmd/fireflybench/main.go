// Command fireflybench regenerates the paper's evaluation tables on the
// simulated Firefly testbed and prints them beside the published values.
//
// Usage:
//
//	fireflybench                  # all tables at full paper scale
//	fireflybench -table I,VIII    # selected tables
//	fireflybench -quality 0.1     # 10% of the paper's call counts (fast)
//	fireflybench -list            # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fireflyrpc/internal/exper"
)

func main() {
	tables := flag.String("table", "all", "comma-separated table IDs (I..XII, improvements, streaming, ablations) or 'all'")
	quality := flag.Float64("quality", 1.0, "fraction of the paper's call counts to run")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	trace := flag.Bool("trace", false, "trace one Null() and one MaxResult(b) call through the simulated fast path and exit")
	flag.Parse()

	if *trace {
		traceCalls(*seed)
		return
	}

	if *list {
		for _, e := range exper.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := exper.Options{Quality: *quality, Seed: *seed}

	var selected []exper.Experiment
	if strings.EqualFold(*tables, "all") {
		selected = exper.All()
	} else {
		for _, id := range strings.Split(*tables, ",") {
			e, ok := exper.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "fireflybench: unknown table %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("Performance of Firefly RPC — reproduction (quality %.2f, seed %d)\n\n", *quality, *seed)
	for _, e := range selected {
		start := time.Now()
		tb := e.Run(opts)
		fmt.Print(tb.Render())
		fmt.Printf("  [%s in %.1fs wall]\n\n", e.ID, time.Since(start).Seconds())
	}
}
