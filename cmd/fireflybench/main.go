// Command fireflybench regenerates the paper's evaluation tables on the
// simulated Firefly testbed and prints them beside the published values.
//
// Usage:
//
//	fireflybench                  # all tables at full paper scale
//	fireflybench -table I,VIII    # selected tables
//	fireflybench -quality 0.1     # 10% of the paper's call counts (fast)
//	fireflybench -list            # list experiments
//	fireflybench -real            # benchmark the real stack, write BENCH_realstack.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fireflyrpc/internal/exper"
	"fireflyrpc/internal/realbench"
)

func main() {
	tables := flag.String("table", "all", "comma-separated table IDs (I..XII, improvements, streaming, ablations) or 'all'")
	quality := flag.Float64("quality", 1.0, "fraction of the paper's call counts to run")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	trace := flag.Bool("trace", false, "trace one Null() and one MaxResult(b) call through the simulated fast path and exit")
	real := flag.Bool("real", false, "benchmark the real RPC stack (exchange + UDP loopback) instead of the simulation")
	realOut := flag.String("realout", "BENCH_realstack.json", "output path for -real results")
	realThreads := flag.String("realthreads", "1,2,4,8", "comma-separated caller-thread counts for -real")
	realFanout := flag.String("realfanout", "1,8,64", "comma-separated async fan-out widths for -real")
	flag.Parse()

	if *real {
		runReal(*realOut, *realThreads, *realFanout)
		return
	}

	if *trace {
		traceCalls(*seed)
		return
	}

	if *list {
		for _, e := range exper.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := exper.Options{Quality: *quality, Seed: *seed}

	var selected []exper.Experiment
	if strings.EqualFold(*tables, "all") {
		selected = exper.All()
	} else {
		for _, id := range strings.Split(*tables, ",") {
			e, ok := exper.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "fireflybench: unknown table %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("Performance of Firefly RPC — reproduction (quality %.2f, seed %d)\n\n", *quality, *seed)
	for _, e := range selected {
		start := time.Now()
		tb := e.Run(opts)
		fmt.Print(tb.Render())
		fmt.Printf("  [%s in %.1fs wall]\n\n", e.ID, time.Since(start).Seconds())
	}
}

// runReal benchmarks the real stack and writes the JSON suite.
func runReal(outPath, threadSpec, fanoutSpec string) {
	parse := func(spec, flagName string) []int {
		var out []int
		for _, s := range strings.Split(spec, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "fireflybench: bad %s entry %q\n", flagName, s)
				os.Exit(2)
			}
			out = append(out, n)
		}
		return out
	}
	threads := parse(threadSpec, "-realthreads")
	fanout := parse(fanoutSpec, "-realfanout")
	fmt.Printf("Real-stack Table I analogue (threads %v, async fan-out %v)\n", threads, fanout)
	suite := realbench.Run(realbench.Options{Threads: threads, Outstanding: fanout, Log: os.Stdout})
	if err := suite.WriteJSON(outPath); err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: writing %s: %v\n", outPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", outPath, len(suite.Results))
}
