package main

import (
	"fmt"
	"os"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/debughttp"
	"fireflyrpc/internal/realbench"
	"fireflyrpc/internal/simstack"
	"fireflyrpc/internal/simtrace"
)

// runTraceOverhead prints the tracing-on vs tracing-off async Null
// comparison and exits non-zero when the self-relative ratio crosses the
// bound — the CI witness for the "tracing costs ≤5% when on, nothing when
// off" claim.
func runTraceOverhead(calls, width int, bound float64) {
	res, err := realbench.TraceOverhead(calls, width)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: traceoverhead: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("exchange async Null fan-out, %d outstanding, %d calls per round, best of %d rounds\n\n",
		res.Outstanding, res.Off.Calls, res.Rounds)
	fmt.Printf("  tracing off %8.0f ns/op  %9.0f calls/s\n", res.Off.NsPerOp, res.Off.CallsPerSec)
	fmt.Printf("  tracing on  %8.0f ns/op  %9.0f calls/s\n", res.On.NsPerOp, res.On.CallsPerSec)
	fmt.Printf("\nratio: %.3f (bound %.2f)\n", res.Ratio, bound)
	if res.Exceeds(bound) {
		fmt.Fprintf(os.Stderr, "fireflybench: tracing-on overhead ratio %.3f exceeds the %.2f bound\n", res.Ratio, bound)
		os.Exit(1)
	}
}

// runMergedTrace writes one Perfetto trace-event document holding both a
// simulated run's timeline and the spans of a real two-hop chained call —
// the shared span schema is what lets the same viewer show both. The real
// spans are shifted to the document's origin so the two timelines sit side
// by side rather than a process-uptime apart.
func runMergedTrace(outPath string, seed uint64, threads, calls, chainCalls int) {
	cfg := costmodel.NewConfig()
	w := simstack.NewWorld(&cfg, seed)
	b := simtrace.AttachWorld(w)
	r := w.Run(simstack.MaxResultSpec(&cfg), threads, calls)

	rep, err := realbench.ChainSpans(chainCalls)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: mergedtrace: %v\n", err)
		os.Exit(1)
	}
	spans := debughttp.PerfettoSpans("real", rep.Spans)
	var minStart int64 = -1
	for i := range spans {
		if minStart < 0 || spans[i].StartNs < minStart {
			minStart = spans[i].StartNs
		}
	}
	for i := range spans {
		spans[i].StartNs -= minStart
		spans[i].EndNs -= minStart
	}
	b.AddSpans(spans)

	f, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: %v\n", err)
		os.Exit(1)
	}
	n, err := b.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fireflybench: writing %s: %v\n", outPath, err)
		os.Exit(1)
	}
	fmt.Printf("simulated %d MaxResult calls over %d threads in %v virtual time\n",
		r.Calls, threads, r.Elapsed)
	fmt.Printf("real chain: %d calls, %d root + %d child spans (linked=%v, unaccounted %+.2f%%)\n",
		rep.Calls, rep.Roots, rep.Children, rep.Linked(), 100*rep.Unaccounted)
	fmt.Printf("wrote %s: %d bytes (load in ui.perfetto.dev)\n", outPath, n)
	if !rep.Linked() {
		fmt.Fprintln(os.Stderr, "fireflybench: chained-call spans are not causally complete")
		os.Exit(1)
	}
}
