package main

import (
	"fmt"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/firefly"
	"fireflyrpc/internal/simstack"
)

// traceCalls prints the event timeline of one Null() and one MaxResult(b)
// call through the simulated fast path — the narrative of §3.1 with
// timestamps attached. One warm-up call precedes the traced one so the
// fast-path precondition ("server threads are waiting for the call") holds.
func traceCalls(seed uint64) {
	for _, which := range []string{"Null()", "MaxResult(b)"} {
		cfg := costmodel.NewConfig()
		cfg.TimingJitter = 0 // a clean, exactly-reproducible timeline
		w := simstack.NewWorld(&cfg, seed)
		var spec *simstack.ProcSpec
		if which == "Null()" {
			spec = simstack.NullSpec(&cfg)
		} else {
			spec = simstack.MaxResultSpec(&cfg)
		}

		client := w.BindTest()
		var log []string
		simstack.TraceSink = &log

		result := make([]byte, spec.ResultBytes)
		var start, end float64
		w.Caller.Sched.SpawnProc("tracer", func(p *firefly.Proc) {
			// Warm up, then trace the steady-state call.
			if err := client.Call(p, spec, nil, result); err != nil {
				log = append(log, "warmup failed: "+err.Error())
				w.K.Stop()
				return
			}
			simstack.DebugActivity = client.Activity()
			start = p.Now().Micros()
			if err := client.Call(p, spec, nil, result); err != nil {
				log = append(log, "traced call failed: "+err.Error())
			}
			end = p.Now().Micros()
			simstack.DebugActivity = 0
			w.K.Stop()
		})
		w.K.Run()
		simstack.TraceSink = nil

		fmt.Printf("=== one %s call through the simulated fast path (seed %d) ===\n", which, seed)
		for _, line := range log {
			fmt.Println(line)
		}
		fmt.Printf("caller-observed latency: %.0f µs (call entered at %.1f µs)\n\n", end-start, start)
	}
}
