// Command kvctl runs and exercises the replicated key-value store — the
// cluster layer's flagship — over real UDP.
//
// Serve a replica (repeat on three hosts/ports for a replica set):
//
//	kvctl serve -listen 127.0.0.1:5601
//	kvctl serve -listen 127.0.0.1:5601 -registry 127.0.0.1:5500 -service kv/main
//
// Operate on the set, naming replicas directly or via a registry:
//
//	kvctl put  -replicas 127.0.0.1:5601,127.0.0.1:5602,127.0.0.1:5603 color teal
//	kvctl get  -replicas ...                                          color
//	kvctl getany -hedge -replicas ...                                 color
//	kvctl get  -registry 127.0.0.1:5500 -service kv/main              color
//	kvctl stats -replicas ...
//
// put fans the write to every replica and succeeds on a majority ack;
// get reads a majority and returns the newest version; getany reads one
// balanced replica (add -hedge for tail-tolerant backup requests).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"fireflyrpc/internal/cluster"
	"fireflyrpc/internal/core"
	"fireflyrpc/internal/debughttp"
	"fireflyrpc/internal/kvstore"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/registry"
	"fireflyrpc/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kvctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "serve":
		serve(args)
	case "put", "get", "getany", "stats":
		client(cmd, args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kvctl serve|put|get|getany|stats [flags] [key [value]]")
	os.Exit(2)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:5601", "UDP address to serve on")
	workers := fs.Int("workers", 8, "server threads")
	regAddr := fs.String("registry", "", "directory address to register with (empty = none)")
	service := fs.String("service", "kv/main", "service name to register as")
	ttl := fs.Duration("ttl", 10*time.Second, "registration lease TTL (refreshed automatically)")
	debugAddr := fs.String("debug", "", "serve /debug/rpc on this HTTP address; empty = off")
	fs.Parse(args)

	tr, err := transport.ListenUDP(*listen)
	if err != nil {
		log.Fatal(err)
	}
	cfg := proto.DefaultConfig()
	cfg.Workers = *workers
	node := core.NewNode(tr, cfg)
	store := kvstore.NewStore()
	node.Export(store.Export())

	if *regAddr != "" {
		raddr, err := transport.ResolveUDPAddr(*regAddr)
		if err != nil {
			log.Fatalf("-registry: %v", err)
		}
		reg := registry.NewClient(node, raddr)
		stop, err := reg.Lease(*service, node.Addr().String(), *ttl)
		if err != nil {
			log.Fatalf("register %s: %v", *service, err)
		}
		defer stop()
		fmt.Printf("kvctl: registered as %s at %s (lease %v)\n", *service, node.Addr(), *ttl)
	}
	if *debugAddr != "" {
		debughttp.Register("kv-replica", node.Conn())
		dbg, err := debughttp.Serve(*debugAddr)
		if err != nil {
			log.Fatalf("debug listener: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("kvctl: debug surface on http://%s/debug/rpc\n", dbg.Addr())
	}
	fmt.Printf("kvctl: KV replica v%d on %s (%d workers)\n", kvstore.IfaceVersion, node.Addr(), *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := store.Stats()
	fmt.Printf("kvctl: %d keys, %d applies, %d stale writes ignored\n", store.Len(), st.Applies, st.Ignored)
	node.Close()
}

func client(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	replicas := fs.String("replicas", "", "comma-separated replica addresses (alternative to -registry)")
	regAddr := fs.String("registry", "", "directory address to resolve -service through")
	service := fs.String("service", "kv/main", "service name to resolve")
	bind := fs.String("bind", "127.0.0.1:0", "local UDP address")
	hedge := fs.Bool("hedge", false, "enable hedged reads (getany)")
	hedgeAfter := fs.Duration("hedge-after", 0, "fixed hedge delay; 0 = adaptive p95")
	timeout := fs.Duration("timeout", 5*time.Second, "per-operation deadline")
	fs.Parse(args)

	tr, err := transport.ListenUDP(*bind)
	if err != nil {
		log.Fatal(err)
	}
	node := core.NewNode(tr, proto.DefaultConfig())
	defer node.Close()

	var resolver cluster.Resolver
	switch {
	case *replicas != "":
		resolver = cluster.Static(strings.Split(*replicas, ","))
	case *regAddr != "":
		raddr, err := transport.ResolveUDPAddr(*regAddr)
		if err != nil {
			log.Fatalf("-registry: %v", err)
		}
		resolver = cluster.NewRegistryResolver(registry.NewClient(node, raddr), *service, time.Second)
	default:
		log.Fatal("need -replicas or -registry")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cc, err := cluster.New(ctx, cluster.Config{
		Node:      node,
		Resolver:  resolver,
		ParseAddr: transport.ResolveUDPAddr,
		Iface:     kvstore.IfaceName,
		Version:   kvstore.IfaceVersion,
		Hedge:     cluster.HedgeConfig{Enabled: *hedge, After: *hedgeAfter},
	})
	if err != nil {
		log.Fatal(err)
	}
	kv := kvstore.NewKV(cc)

	rest := fs.Args()
	switch cmd {
	case "put":
		if len(rest) != 2 {
			log.Fatal("put needs: key value")
		}
		ver, err := kv.Put(ctx, rest[0], []byte(rest[1]))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ok v%d\n", ver)
	case "get":
		if len(rest) != 1 {
			log.Fatal("get needs: key")
		}
		val, ver, err := kv.Get(ctx, rest[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (v%d)\n", val, ver)
	case "getany":
		if len(rest) != 1 {
			log.Fatal("getany needs: key")
		}
		val, ver, err := kv.GetAny(ctx, rest[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (v%d)\n", val, ver)
	case "stats":
		s := cc.Stats()
		fmt.Printf("service %s: %d calls, %d issued, %d hedges (%d won, %d cancelled)\n",
			s.Service, s.Calls, s.Issued, s.HedgesFired, s.HedgesWon, s.HedgesCancelled)
		for _, r := range s.Replicas {
			fmt.Printf("  %-22s picks=%-6d wins=%-6d fails=%-4d ejected=%-5v p95=%.0fµs\n",
				r.Addr, r.Picks, r.Wins, r.Failures, r.Ejected, r.P95Us)
		}
	}
}
