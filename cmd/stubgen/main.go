// Command stubgen compiles a Modula-2-flavoured interface definition into
// Go caller and server stubs over the fireflyrpc runtime:
//
//	stubgen -in test.idl -pkg testsvc -out testsvc.go
//
// With -out '-' (the default) the generated code goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"fireflyrpc/internal/idl"
)

func main() {
	in := flag.String("in", "", "input .idl file (required)")
	pkg := flag.String("pkg", "stubs", "Go package name for the generated file")
	out := flag.String("out", "-", "output .go file, or '-' for stdout")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "stubgen: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stubgen: %v\n", err)
		os.Exit(1)
	}
	mod, err := idl.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "stubgen: %s: %v\n", *in, err)
		os.Exit(1)
	}
	code, err := idl.Generate(mod, *pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stubgen: %v\n", err)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(code)
		return
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "stubgen: %v\n", err)
		os.Exit(1)
	}
}
