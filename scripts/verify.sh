#!/bin/sh
# Tier-1 verification: build, vet (examples and commands included via ./...),
# full test suite, then the race-detector pass over the packages with
# lock-sharded concurrent fast paths — proto carries the per-peer channel
# map, central retransmission engine, and the stage-trace ring, so its
# channel/cancellation/trace tests run under -race here. The final steps pin
# the fast path's allocation budgets (Client.Go/Await must cost no more
# objects per call than blocking Call, and the observability machinery must
# add nothing to a call while tracing is disabled) and run the chaos smoke:
# faultnet/overload under -race plus one tail-table cell asserting that
# injected loss inflates p99 without failing calls and that the same seed
# reproduces the same impairment schedule. The batched-datapath steps run
# the transport package under -race, re-run transport/proto/faultnet with
# FIREFLYRPC_NOBATCH=1 (everything must pass with batching force-disabled),
# and cross-build for darwin and linux/arm64 so the non-Linux fallback and
# the arm64 syscall numbers stay compilable. The session steps race the
# hello handshake (negotiation under loss, legacy fallback, racing first
# calls) and run the transport conformance suite over TCP, the simulated
# Ethernet, and the faultnet wrapper, so every Transport keeps the one
# shared contract. The runbook steps validate every committed scenario
# runbook's schema (the same cheap gate CI runs before the scenario suite)
# and pin the macro-scenario executor's determinism: same runbook + seed =>
# byte-identical report, and the committed overload runbook's assertions
# must detect an admission-policy flip. The tracing steps race the wire
# trace-context propagation path (negotiated prefix, inheritance, legacy
# fallback, the two-hop chained-call join) and pin the flight recorder's
# zero-allocation budget: recording an anomaly in steady state must not
# allocate. The cluster steps race the replica-set layer's concurrent
# machinery — P2C picks against live latency histograms, hedged requests
# with cross-server cancellation, quorum fan-out with straggler cancel,
# the /debug/rpc/cluster view under live traffic — and the registry's
# lease bookkeeping (expiry, refresh loops, multi-address entries).
#
# Usage: verify.sh [-q]
#   -q  quiet: only failures (with the failing step's output) and the final
#       verdict are printed. Used by CI so the log is signal, not scroll.
#
# Every step failure prints "FAIL: <step>" to stderr and exits non-zero;
# scripts/test_verify.sh asserts this contract holds.
set -eu

cd "$(dirname "$0")/.."

QUIET=0
for arg in "$@"; do
	case "$arg" in
	-q | --quiet) QUIET=1 ;;
	*)
		echo "usage: verify.sh [-q]" >&2
		exit 2
		;;
	esac
done

# run <description> <command...>: execute one verification step, echoing it
# unless quiet, and convert any failure into an explicit FAIL message plus a
# non-zero exit (the captured output is replayed on failure in quiet mode).
run() {
	desc="$1"
	shift
	if [ "$QUIET" -eq 1 ]; then
		if ! out=$("$@" 2>&1); then
			echo "FAIL: $desc" >&2
			echo "$out" >&2
			exit 1
		fi
	else
		echo "==> $desc: $*"
		if ! "$@"; then
			echo "FAIL: $desc" >&2
			exit 1
		fi
	fi
}

run "build" go build ./...
run "vet" go vet ./...
run "runbook validation" go run ./cmd/fireflysim -validate runbooks/*.json
run "tests" go test ./...
run "race: proto + core" go test -race ./internal/proto ./internal/core
run "race: cancellation + leak stress" go test -race -run 'TestLossyAsyncStressNoLeaks|TestCancel' ./internal/proto
run "race: live sim inspection" go test -race -run 'TestInspectConcurrentWithRun|TestSimSurfaceLive' ./internal/sim ./internal/debughttp
run "alloc budgets: fast path" go test -run 'TestNullAllocBudget|TestAsyncNullAllocBudget' -count=1 .
run "alloc budget: tracing disabled" go test -run 'TestTraceDisabledAllocBudget' -count=1 ./internal/proto
run "sim determinism: trace + timings" go test -run 'TestTraceDeterminism|TestTracerDoesNotPerturb' -count=1 ./internal/sim ./internal/simtrace
run "runbook determinism + policy gate" go test -run 'TestRunbookDeterminism|TestOverloadRunbookPolicyFlip' -count=1 ./internal/runbook
run "chaos smoke: faultnet + overload race" go test -race ./internal/faultnet ./internal/overload
run "chaos smoke: tail inflation + determinism" go test -run 'TestTailSweepP99Inflation|TestTailSweepDeterministic' -count=1 ./internal/realbench
run "race: batched transport" go test -race ./internal/transport
run "race: session-negotiation" go test -race -run 'TestSession' ./internal/proto
run "race: trace-propagation" go test -race -run 'TestTraceCtx|TestTraceLegacyV0Compat|TestChainSpansLinked' ./internal/proto ./internal/realbench
run "alloc budget: flight recorder" go test -run 'TestFlightRecorderAllocBudget' -count=1 ./internal/proto
run "tcp transport: conformance + proto" go test -count=1 -run 'TestTCP|TestConformance' ./internal/transport
run "transport conformance: sim + faultnet" go test -count=1 -run 'TestConformance|TestProtoOver' ./internal/simnet ./internal/faultnet
run "batch force-disabled: transport + proto" env FIREFLYRPC_NOBATCH=1 go test -count=1 ./internal/transport ./internal/proto ./internal/faultnet
run "race: cluster-hedging" go test -race -run 'TestHedged|TestHedge|TestP2C|TestEjection|TestBudgetPropagatesThroughCluster|TestFanout|TestKV|TestStore|TestClusterViewUnderLiveTraffic' ./internal/cluster ./internal/kvstore ./internal/debughttp
run "race: registry-leases" go test -race ./internal/registry
run "cross-build: darwin" env GOOS=darwin go build ./...
run "cross-build: linux/arm64" env GOOS=linux GOARCH=arm64 go build ./...

echo "verify: all checks passed"
