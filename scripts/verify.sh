#!/bin/sh
# Tier-1 verification: build, vet (examples and commands included via ./...),
# full test suite, then the race-detector pass over the packages with
# lock-sharded concurrent fast paths — proto now carries the per-peer channel
# map and central retransmission engine, so its channel/cancellation tests run
# under -race here. The final step pins the async fast path's allocation
# budget: Client.Go/Await must cost no more objects per call than blocking
# Call (TestAsyncNullAllocBudget fails the run otherwise).
set -ex
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
go test ./...
go test -race ./internal/proto ./internal/core
go test -race -run 'TestLossyAsyncStressNoLeaks|TestCancel' ./internal/proto
go test -run 'TestNullAllocBudget|TestAsyncNullAllocBudget' -count=1 .
