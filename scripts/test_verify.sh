#!/bin/sh
# Tests scripts/verify.sh's exit-code contract without running the real
# toolchain: a fake `go` binary shimmed onto PATH stands in for every step,
# so the test asserts (1) a failing step fails the script loudly, (2) a
# passing run exits zero, (3) unknown flags are rejected — in milliseconds.
# CI runs this before verify.sh itself: a verify script that swallows
# failures would otherwise turn the whole pipeline green forever.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail() {
	echo "test_verify: FAIL - $1" >&2
	exit 1
}

# 1. A failing toolchain must fail the script and name the failing step.
cat >"$tmp/go" <<'EOF'
#!/bin/sh
exit 3
EOF
chmod +x "$tmp/go"
set +e
out=$(PATH="$tmp:$PATH" sh scripts/verify.sh -q 2>&1)
status=$?
set -e
[ "$status" -ne 0 ] || fail "verify.sh exited 0 under a failing toolchain"
case "$out" in
*"FAIL: build"*) ;;
*) fail "failing build did not print 'FAIL: build' (got: $out)" ;;
esac

# 2. A passing toolchain must exit zero and report success.
cat >"$tmp/go" <<'EOF'
#!/bin/sh
exit 0
EOF
chmod +x "$tmp/go"
set +e
out=$(PATH="$tmp:$PATH" sh scripts/verify.sh -q 2>&1)
status=$?
set -e
[ "$status" -eq 0 ] || fail "verify.sh exited $status under a passing toolchain ($out)"
case "$out" in
*"all checks passed"*) ;;
*) fail "passing run did not report success (got: $out)" ;;
esac

# 3. A failure mid-pipeline (vet, not build) must also propagate.
cat >"$tmp/go" <<'EOF'
#!/bin/sh
[ "$1" = "vet" ] && exit 5
exit 0
EOF
chmod +x "$tmp/go"
set +e
out=$(PATH="$tmp:$PATH" sh scripts/verify.sh -q 2>&1)
status=$?
set -e
[ "$status" -ne 0 ] || fail "verify.sh swallowed a mid-pipeline vet failure"
case "$out" in
*"FAIL: vet"*) ;;
*) fail "vet failure did not print 'FAIL: vet' (got: $out)" ;;
esac

# 4. A failure in the last step (sim determinism) must propagate too — the
# contract covers the whole pipeline, not just the early steps.
cat >"$tmp/go" <<'EOF'
#!/bin/sh
for a in "$@"; do
	case "$a" in
	*TestTraceDeterminism*) exit 7 ;;
	esac
done
exit 0
EOF
chmod +x "$tmp/go"
set +e
out=$(PATH="$tmp:$PATH" sh scripts/verify.sh -q 2>&1)
status=$?
set -e
[ "$status" -ne 0 ] || fail "verify.sh swallowed a sim-determinism failure"
case "$out" in
*"FAIL: sim determinism"*) ;;
*) fail "determinism failure did not print 'FAIL: sim determinism' (got: $out)" ;;
esac

# 5. A failure in the chaos-smoke tail step — now the last step — must
# propagate: appending steps to the pipeline must not weaken the contract.
cat >"$tmp/go" <<'EOF'
#!/bin/sh
for a in "$@"; do
	case "$a" in
	*TestTailSweepP99Inflation*) exit 9 ;;
	esac
done
exit 0
EOF
chmod +x "$tmp/go"
set +e
out=$(PATH="$tmp:$PATH" sh scripts/verify.sh -q 2>&1)
status=$?
set -e
[ "$status" -ne 0 ] || fail "verify.sh swallowed a chaos-smoke failure"
case "$out" in
*"FAIL: chaos smoke"*) ;;
*) fail "chaos-smoke failure did not print 'FAIL: chaos smoke' (got: $out)" ;;
esac

# 6. A failure in the session-negotiation race step must propagate — the
# hello handshake gate is part of the contract like every other step.
cat >"$tmp/go" <<'EOF'
#!/bin/sh
for a in "$@"; do
	case "$a" in
	*TestSession*) exit 11 ;;
	esac
done
exit 0
EOF
chmod +x "$tmp/go"
set +e
out=$(PATH="$tmp:$PATH" sh scripts/verify.sh -q 2>&1)
status=$?
set -e
[ "$status" -ne 0 ] || fail "verify.sh swallowed a session-negotiation failure"
case "$out" in
*"FAIL: race: session-negotiation"*) ;;
*) fail "session-negotiation failure did not print its step (got: $out)" ;;
esac

# 7. A failure in the runbook-validation step must propagate with its own
# step name — the scenario suite's schema gate is part of the contract.
cat >"$tmp/go" <<'EOF'
#!/bin/sh
for a in "$@"; do
	case "$a" in
	*fireflysim*) exit 13 ;;
	esac
done
exit 0
EOF
chmod +x "$tmp/go"
set +e
out=$(PATH="$tmp:$PATH" sh scripts/verify.sh -q 2>&1)
status=$?
set -e
[ "$status" -ne 0 ] || fail "verify.sh swallowed a runbook-validation failure"
case "$out" in
*"FAIL: runbook validation"*) ;;
*) fail "runbook-validation failure did not print its step (got: $out)" ;;
esac

# 8. A failure in the flight-recorder alloc-budget step must propagate —
# the zero-allocation recording guarantee is part of the contract.
cat >"$tmp/go" <<'EOF'
#!/bin/sh
for a in "$@"; do
	case "$a" in
	*TestFlightRecorderAllocBudget*) exit 15 ;;
	esac
done
exit 0
EOF
chmod +x "$tmp/go"
set +e
out=$(PATH="$tmp:$PATH" sh scripts/verify.sh -q 2>&1)
status=$?
set -e
[ "$status" -ne 0 ] || fail "verify.sh swallowed a flight-recorder alloc failure"
case "$out" in
*"FAIL: alloc budget: flight recorder"*) ;;
*) fail "flight-recorder alloc failure did not print its step (got: $out)" ;;
esac

# 9. A failure in the cluster-hedging race step must propagate — the
# replica-set layer's concurrency gate is part of the contract.
cat >"$tmp/go" <<'EOF'
#!/bin/sh
for a in "$@"; do
	case "$a" in
	*TestHedged*) exit 17 ;;
	esac
done
exit 0
EOF
chmod +x "$tmp/go"
set +e
out=$(PATH="$tmp:$PATH" sh scripts/verify.sh -q 2>&1)
status=$?
set -e
[ "$status" -ne 0 ] || fail "verify.sh swallowed a cluster-hedging failure"
case "$out" in
*"FAIL: race: cluster-hedging"*) ;;
*) fail "cluster-hedging failure did not print its step (got: $out)" ;;
esac

# 10. Unknown flags are rejected with a usage error.
set +e
sh scripts/verify.sh --bogus >/dev/null 2>&1
status=$?
set -e
[ "$status" -eq 2 ] || fail "unknown flag exited $status, want 2"

echo "test_verify: ok"
